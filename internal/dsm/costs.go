// Package dsm implements Millipage: a fine-granularity, sequentially
// consistent, page-based software DSM built on the MultiView technique
// (internal/core), a simulated VM subsystem (internal/vm) and a simulated
// FastMessages layer (internal/fastmsg).
//
// The protocol is the paper's Figure 3, verbatim in structure:
//
//   - Sequential Consistency via Single-Writer/Multiple-Readers.
//   - One process per host; one of them (host 0) is the manager and owns
//     the minipage table (MPT) and the directory.
//   - A fault sends only the faulting address to the manager. The manager
//     looks it up, writes the translation info (minipage base, size,
//     privileged-view address) into reserved header space, and forwards
//     the request; data then travels directly owner → requester.
//   - The woken faulter sends an ack to the manager, which closes the
//     transaction. Requests arriving for a minipage with an open
//     transaction are queued at the manager (and counted: these are the
//     paper's "competing requests"). Consequently a non-manager host can
//     always service a request immediately — it is never mid-acquisition
//     of the same minipage — so non-manager hosts need no queues at all.
//   - DSM server threads access memory through the privileged view:
//     updates are atomic with respect to the application views, and
//     send/receive is zero-copy.
package dsm

import "millipage/internal/sim"

// Costs is the table of local operation costs, calibrated to Table 1 of
// the paper (all on the 300 MHz Pentium II / NT 4.0 testbed). Message
// send/receive costs live in fastmsg.Params; these are the host-local
// costs charged on top.
type Costs struct {
	AccessFault sim.Duration // taking the access violation and dispatching the handler
	GetProt     sim.Duration // querying a vpage protection
	SetProt     sim.Duration // VirtualProtect on a vpage run
	MPTLookup   sim.Duration // manager's minipage-table lookup (Translate)
	ThreadWake  sim.Duration // SetEvent + scheduler latency to resume the faulting thread
	BlockThread sim.Duration // suspending the faulting thread on its event
	FaultResume sim.Duration // SEH unwind and instruction retry after a serviced fault
	BarrierBase sim.Duration // local bookkeeping of one barrier episode
	MallocBase  sim.Duration // allocator bookkeeping at the manager

	// InstallPerByte is the per-byte cost of landing received minipage
	// contents (DMA completion handling, dirty-page bookkeeping).
	InstallPerByte sim.Duration

	HeaderSize int // bytes in a protocol header message
}

// DefaultCosts returns the Table-1 calibration.
func DefaultCosts() Costs {
	return Costs{
		AccessFault:    26 * sim.Microsecond,
		GetProt:        7 * sim.Microsecond,
		SetProt:        12 * sim.Microsecond,
		MPTLookup:      7 * sim.Microsecond,
		ThreadWake:     30 * sim.Microsecond,
		BlockThread:    10 * sim.Microsecond,
		FaultResume:    35 * sim.Microsecond,
		BarrierBase:    8 * sim.Microsecond,
		MallocBase:     5 * sim.Microsecond,
		InstallPerByte: 4 * sim.Nanosecond,
		HeaderSize:     32,
	}
}
