// Package dsm implements Millipage: a fine-granularity, sequentially
// consistent, page-based software DSM built on the MultiView technique
// (internal/core), a simulated VM subsystem (internal/vm) and a simulated
// FastMessages layer (internal/fastmsg).
//
// The protocol is the paper's Figure 3, verbatim in structure:
//
//   - Sequential Consistency via Single-Writer/Multiple-Readers.
//   - One process per host; one of them (host 0) is the manager and owns
//     the minipage table (MPT) and the directory.
//   - A fault sends only the faulting address to the manager. The manager
//     looks it up, writes the translation info (minipage base, size,
//     privileged-view address) into reserved header space, and forwards
//     the request; data then travels directly owner → requester.
//   - The woken faulter sends an ack to the manager, which closes the
//     transaction. Requests arriving for a minipage with an open
//     transaction are queued at the manager (and counted: these are the
//     paper's "competing requests"). Consequently a non-manager host can
//     always service a request immediately — it is never mid-acquisition
//     of the same minipage — so non-manager hosts need no queues at all.
//   - DSM server threads access memory through the privileged view:
//     updates are atomic with respect to the application views, and
//     send/receive is zero-copy.
package dsm

import "millipage/internal/cluster"

// Costs is the shared table of host-local operation costs, calibrated to
// Table 1 of the paper; it lives in internal/cluster so every protocol
// charges the same substrate costs.
type Costs = cluster.Costs

// DefaultCosts returns the Table-1 calibration.
func DefaultCosts() Costs { return cluster.DefaultCosts() }
