package dsm

import (
	"fmt"
	"math/rand"
	"testing"

	"millipage/internal/sim"
	"millipage/internal/vm"
)

func TestHomeBasedBasicOperation(t *testing.T) {
	// The TwoHostReadFetch scenario under home-based management: same
	// application results, but the directory entry lives at the minipage's
	// home shard, not (necessarily) host 0.
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 16, Views: 4, Management: HomeBased})
	var vas [2]uint64
	var got [2]uint32
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			vas[0] = th.Malloc(128) // minipage 0, homed at host 0
			vas[1] = th.Malloc(128) // minipage 1, homed at host 1
			th.WriteU32(vas[0], 111)
			th.WriteU32(vas[1], 222)
		}
		th.Barrier()
		got[th.Host()] = th.ReadU32(vas[0]) + th.ReadU32(vas[1])
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 333 || got[1] != 333 {
		t.Fatalf("got %v", got)
	}
	// Each shard holds exactly the entries it is home to.
	for id := 0; id < 2; id++ {
		home := s.homeOf(id)
		if home != id%2 {
			t.Fatalf("homeOf(%d) = %d, want %d", id, home, id%2)
		}
		for h := 0; h < 2; h++ {
			e := s.ManagerAt(h).entryOrNil(id)
			if (h == home) != (e != nil) {
				t.Fatalf("minipage %d: entry presence at host %d = %v, home is %d",
					id, h, e != nil, home)
			}
		}
	}
	// Host 1's read of minipage 1 was served by its own shard.
	if rr := s.ManagerAt(1).Stats.ReadReqs; rr == 0 {
		t.Fatal("host 1's shard served no read requests")
	}
}

func TestHomeOfOverride(t *testing.T) {
	// A custom HomeOf places every minipage at the last host.
	s := newSys(t, Options{
		Hosts: 3, SharedSize: 1 << 16, Views: 4,
		Management: HomeBased,
		HomeOf:     func(id, hosts int) int { return hosts - 1 },
	})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(64)
			th.WriteU32(va, 7)
		}
		th.Barrier()
		if got := th.ReadU32(va); got != 7 {
			t.Errorf("host %d read %d", th.Host(), got)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := s.ManagerAt(2).entryOrNil(0); e == nil {
		t.Fatal("entry not at the overridden home")
	}
	if e := s.ManagerAt(0).entryOrNil(0); e != nil {
		t.Fatal("host 0 kept a directory entry it is not home to")
	}
}

// TestCentralHomeBasedEquivalence runs the same barrier-phased,
// histogram-style workload under both management modes. The program is
// DRF and phase-deterministic, so application results — final variable
// values and per-host fault counts — must be byte-identical; only the
// load placement (and hence timing) may differ.
func TestCentralHomeBasedEquivalence(t *testing.T) {
	const (
		hosts  = 8
		nVars  = 32
		rounds = 4
	)
	type outcome struct {
		vals    [nVars]uint32
		rf, wf  [hosts]uint64
		invs    uint64
		shardRq [hosts]uint64
	}
	run := func(m Management) outcome {
		s := newSys(t, Options{Hosts: hosts, SharedSize: 1 << 20, Views: 8, Seed: 42, Management: m})
		var vas [nVars]uint64
		var out outcome
		err := s.Run(func(th *Thread) {
			if th.Host() == 0 {
				for v := range vas {
					vas[v] = th.Malloc(96)
					th.WriteU32(vas[v], uint32(v))
				}
			}
			th.Barrier()
			for r := 0; r < rounds; r++ {
				// Accumulate phase: var v belongs to host (v+r) % hosts.
				for v := 0; v < nVars; v++ {
					if (v+r)%hosts == th.Host() {
						th.WriteU32(vas[v], th.ReadU32(vas[v])+uint32(r+1))
					}
				}
				th.Barrier()
				// Read phase: every host scans the whole table.
				for v := 0; v < nVars; v++ {
					_ = th.ReadU32(vas[v])
				}
				th.Barrier()
			}
			if th.Host() == 0 {
				for v := range vas {
					out.vals[v] = th.ReadU32(vas[v])
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < hosts; i++ {
			out.rf[i] = s.Host(i).AS.ReadFaults
			out.wf[i] = s.Host(i).AS.WriteFaults
			out.shardRq[i] = s.ManagerAt(i).Stats.ReadReqs + s.ManagerAt(i).Stats.WriteReqs
		}
		out.invs = s.ManagerStatsTotal().Invalidations
		return out
	}

	central, homed := run(Central), run(HomeBased)

	// Application results are identical.
	want := func(v int) uint32 { return uint32(v) + rounds*(rounds+1)/2 }
	for v := 0; v < nVars; v++ {
		if central.vals[v] != want(v) {
			t.Fatalf("central: var %d = %d, want %d", v, central.vals[v], want(v))
		}
		if homed.vals[v] != central.vals[v] {
			t.Fatalf("var %d: central=%d home-based=%d", v, central.vals[v], homed.vals[v])
		}
	}
	if central.rf != homed.rf {
		t.Fatalf("read faults differ:\ncentral    %v\nhome-based %v", central.rf, homed.rf)
	}
	if central.wf != homed.wf {
		t.Fatalf("write faults differ:\ncentral    %v\nhome-based %v", central.wf, homed.wf)
	}
	if central.invs != homed.invs {
		t.Fatalf("invalidations differ: central=%d home-based=%d", central.invs, homed.invs)
	}

	// Load placement is what changed: central funnels every directory
	// request through host 0; home-based spreads them over all shards
	// (32 minipages mod 8 hosts touch every home).
	for i := 1; i < hosts; i++ {
		if central.shardRq[i] != 0 {
			t.Fatalf("central: shard %d served %d requests, want 0", i, central.shardRq[i])
		}
	}
	for i := 0; i < hosts; i++ {
		if homed.shardRq[i] == 0 {
			t.Fatalf("home-based: shard %d served no requests", i)
		}
	}
}

// TestHomeBasedShardInvariants runs randomized DRF programs under
// home-based management and then audits the sharded directory: every
// entry lives exactly at its minipage's home, is quiesced, and its
// copyset agrees with the per-host view protections.
func TestHomeBasedShardInvariants(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, hosts := range []int{3, 8} {
			seed, hosts := seed, hosts
			t.Run(fmt.Sprintf("seed=%d/hosts=%d", seed, hosts), func(t *testing.T) {
				runShardInvariantProgram(t, seed, hosts)
			})
		}
	}
}

func runShardInvariantProgram(t *testing.T, seed int64, hosts int) {
	t.Helper()
	prg := rand.New(rand.NewSource(seed * 31))
	nVars := prg.Intn(20) + 6
	rounds := prg.Intn(3) + 2
	sizes := make([]int, nVars)
	for v := range sizes {
		sizes[v] = (prg.Intn(48) + 1) * 4
	}
	readSet := make([][][]int, rounds)
	for r := range readSet {
		readSet[r] = make([][]int, hosts)
		for h := range readSet[r] {
			n := prg.Intn(nVars)
			for i := 0; i < n; i++ {
				readSet[r][h] = append(readSet[r][h], prg.Intn(nVars))
			}
		}
	}
	val := func(v, r int) uint32 { return uint32(v*999983 + r*10007 + 7) }

	s := newSys(t, Options{Hosts: hosts, SharedSize: 1 << 20, Views: 16, Seed: seed, Management: HomeBased})
	vas := make([]uint64, nVars)
	var finalErr error
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			for v := range vas {
				vas[v] = th.Malloc(sizes[v])
			}
		}
		th.Barrier()
		for r := 0; r < rounds; r++ {
			for v := 0; v < nVars; v++ {
				if (v+r)%th.NumThreads() == th.ID {
					th.WriteU32(vas[v], val(v, r))
				}
			}
			for _, v := range readSet[r][th.Host()] {
				_ = th.ReadU32(vas[v])
			}
			th.Compute(sim.Duration(th.ID) * 20 * sim.Microsecond)
			th.Barrier()
		}
		if th.ID == 0 {
			defer th.Compute(10 * sim.Millisecond) // let the last acks drain
			for v := 0; v < nVars; v++ {
				if got, want := th.ReadU32(vas[v]), val(v, rounds-1); got != want {
					finalErr = fmt.Errorf("var %d = %d, want %d", v, got, want)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalErr != nil {
		t.Fatal(finalErr)
	}

	mpt := s.Manager().MPT()
	for id := 0; id < mpt.NumMinipages(); id++ {
		home := s.homeOf(id)
		// Placement: the entry exists at the home shard and nowhere else.
		for h := 0; h < hosts; h++ {
			e := s.ManagerAt(h).entryOrNil(id)
			if (h == home) != (e != nil) {
				t.Fatalf("minipage %d: entry presence at host %d = %v, home is %d",
					id, h, e != nil, home)
			}
		}
		e := s.ManagerAt(home).entry(id)
		if e.Busy() || e.queue.Len() != 0 {
			t.Fatalf("minipage %d not quiesced at home %d", id, home)
		}
		mp, _ := mpt.ByID(id)
		info := mp.Info(s.Layout)
		// Copyset agrees with view protections on every host.
		cs, _ := e.Copyset()
		for h := 0; h < hosts; h++ {
			prot, perr := s.Host(h).Region.ProtOf(info.Base)
			if perr != nil {
				t.Fatal(perr)
			}
			inSet := cs.Has(h)
			readable := prot >= vm.ReadOnly
			if inSet != readable {
				t.Fatalf("minipage %d host %d: copyset bit %v but protection %v", id, h, inSet, prot)
			}
		}
		checkSWMR(t, s, info)
	}
	// No request may still be parked waiting for a DIR_INIT.
	for h, mg := range s.mgrs {
		if len(mg.waitInit) != 0 {
			t.Fatalf("host %d shard has %d minipages with parked requests", h, len(mg.waitInit))
		}
	}
}

func TestHomeBasedDeterministic(t *testing.T) {
	run := func() (sim.Duration, uint64) {
		s := newSys(t, Options{Hosts: 4, SharedSize: 1 << 16, Views: 4, Seed: 17, Management: HomeBased})
		var va uint64
		err := s.Run(func(th *Thread) {
			if th.Host() == 0 {
				va = th.Malloc(64)
				th.WriteU32(va, 0)
			}
			th.Barrier()
			for i := 0; i < 5; i++ {
				th.Lock(2)
				th.WriteU32(va, th.ReadU32(va)+1)
				th.Unlock(2)
				th.Compute(100 * sim.Microsecond)
			}
			th.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Elapsed(), s.ManagerStatsTotal().CompetingRequests
	}
	e1, c1 := run()
	e2, c2 := run()
	if e1 != e2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", e1, c1, e2, c2)
	}
}

func TestHomeBasedPushAndChunking(t *testing.T) {
	// Push and chunked allocation both work against remote homes.
	s := newSys(t, Options{Hosts: 4, SharedSize: 1 << 20, Views: 6, ChunkLevel: 4, Management: HomeBased})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 1 {
			va = th.Malloc(128) // remote malloc; chunked minipage
			th.WriteU32(va, 41)
			th.WriteU32(va, 42)
			th.Push(va)
		}
		th.Barrier()
		th.Compute(20 * sim.Millisecond)
		th.Barrier()
		if got := th.ReadU32(va); got != 42 {
			t.Errorf("host %d read %d", th.Host(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if i == 1 {
			continue
		}
		if rf := s.Host(i).AS.ReadFaults; rf != 0 {
			t.Fatalf("host %d read faults = %d, want 0 (push should predeliver)", i, rf)
		}
	}
}
