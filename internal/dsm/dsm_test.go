package dsm

import (
	"fmt"
	"testing"

	"millipage/internal/core"
	"millipage/internal/hostset"
	"millipage/internal/sim"
	"millipage/internal/vm"
)

func newSys(t *testing.T, opt Options) *System {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleHostMallocWriteRead(t *testing.T) {
	s := newSys(t, Options{Hosts: 1, SharedSize: 1 << 16, Views: 4})
	var got uint64
	err := s.Run(func(th *Thread) {
		va := th.Malloc(64)
		th.WriteU64(va, 0xFEEDFACE)
		got = th.ReadU64(va)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xFEEDFACE {
		t.Fatalf("got %#x", got)
	}
}

func TestTwoHostReadFetch(t *testing.T) {
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 16, Views: 4})
	var va uint64
	var got [2]uint32
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(128)
			th.WriteU32(va, 12345)
			th.WriteU32(va+4, 67890)
		}
		th.Barrier()
		got[th.Host()] = th.ReadU32(va) + th.ReadU32(va+4)
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 80235 || got[1] != 80235 {
		t.Fatalf("got %v", got)
	}
	// Host 1 must have taken exactly one read fault (both words share a
	// minipage).
	if rf := s.Host(1).AS.ReadFaults; rf != 1 {
		t.Fatalf("host 1 read faults = %d, want 1", rf)
	}
	// Directory: copyset = {0,1}, owner 0.
	cs, owner := s.Manager().Directory()[0].Copyset()
	if cs != hostset.Of(0, 1) || owner != 0 {
		t.Fatalf("copyset=%v owner=%d", cs, owner)
	}
}

func TestWriteInvalidatesReaders(t *testing.T) {
	s := newSys(t, Options{Hosts: 4, SharedSize: 1 << 16, Views: 4})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(64)
			th.WriteU32(va, 1)
		}
		th.Barrier()
		_ = th.ReadU32(va) // all hosts take read copies
		th.Barrier()
		if th.Host() == 3 {
			th.WriteU32(va, 99) // invalidates hosts 0,1,2
		}
		th.Barrier()
		if got := th.ReadU32(va); got != 99 {
			t.Errorf("host %d read %d, want 99", th.Host(), got)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the final reads, every host is back in the copyset; owner is
	// the last writer, host 3.
	cs, owner := s.Manager().Directory()[0].Copyset()
	if owner != 3 {
		t.Fatalf("owner = %d, want 3", owner)
	}
	if cs != hostset.Of(0, 1, 2, 3) {
		t.Fatalf("copyset = %v, want {0,1,2,3}", cs)
	}
	if inv := s.Manager().Stats.Invalidations; inv < 2 {
		t.Fatalf("invalidations = %d, want >= 2", inv)
	}
}

// checkSWMR asserts the Single-Writer/Multiple-Readers invariant for a
// minipage across all hosts' application-view protections.
func checkSWMR(t *testing.T, s *System, info core.Info) {
	t.Helper()
	writable, readable := 0, 0
	for i := 0; i < s.NumHosts(); i++ {
		prot, err := s.Host(i).Region.ProtOf(info.Base)
		if err != nil {
			t.Fatal(err)
		}
		switch prot {
		case vm.ReadWrite:
			writable++
		case vm.ReadOnly:
			readable++
		}
	}
	if writable > 1 {
		t.Fatalf("SW/MR violated: %d writable copies", writable)
	}
	if writable == 1 && readable > 0 {
		t.Fatalf("SW/MR violated: writable copy coexists with %d readable", readable)
	}
}

func TestSWMRInvariantUnderContention(t *testing.T) {
	s := newSys(t, Options{Hosts: 4, SharedSize: 1 << 16, Views: 4, Seed: 7})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(64)
			th.WriteU32(va, 0)
		}
		th.Barrier()
		// Everyone hammers the same minipage with reads and writes.
		for i := 0; i < 20; i++ {
			if (i+th.Host())%3 == 0 {
				th.Lock(1)
				v := th.ReadU32(va)
				th.WriteU32(va, v+1)
				th.Unlock(1)
			} else {
				_ = th.ReadU32(va)
			}
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	mp, _ := s.Manager().MPT().ByID(0)
	checkSWMR(t, s, mp.Info(s.Layout))
	if s.Manager().Stats.CompetingRequests == 0 {
		t.Log("note: no competing requests under this schedule")
	}
}

func TestLockProtectedCounter(t *testing.T) {
	const perHost = 10
	s := newSys(t, Options{Hosts: 4, SharedSize: 1 << 16, Views: 4})
	var va uint64
	var final uint32
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(8)
			th.WriteU32(va, 0)
		}
		th.Barrier()
		for i := 0; i < perHost; i++ {
			th.Lock(7)
			th.WriteU32(va, th.ReadU32(va)+1)
			th.Unlock(7)
		}
		th.Barrier()
		if th.Host() == 0 {
			final = th.ReadU32(va)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final != 4*perHost {
		t.Fatalf("counter = %d, want %d (lost updates => SC violation)", final, 4*perHost)
	}
}

func TestFalseSharingAvoided(t *testing.T) {
	// Two variables on the same physical page, different minipages:
	// concurrent writers to different variables must not invalidate each
	// other (no write faults after the first).
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 16, Views: 4})
	var vas [2]uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			vas[0] = th.Malloc(64)
			vas[1] = th.Malloc(64)
		}
		th.Barrier()
		mine := vas[th.Host()]
		for i := 0; i < 50; i++ {
			th.WriteU32(mine, uint32(i))
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Host 1 takes exactly one write fault to acquire its variable; the 49
	// subsequent writes hit the already-writable minipage. Host 0 owns its
	// variable from allocation: zero faults.
	if wf := s.Host(1).AS.WriteFaults; wf != 1 {
		t.Fatalf("host 1 write faults = %d, want 1 (false sharing?)", wf)
	}
	if wf := s.Host(0).AS.WriteFaults; wf != 0 {
		t.Fatalf("host 0 write faults = %d, want 0", wf)
	}
	// Verify the two variables do share a physical page (the test would be
	// vacuous otherwise).
	mps := s.Manager().MPT().Minipages()
	if mps[0].Off/vm.PageSize != mps[1].Off/vm.PageSize {
		t.Fatal("variables landed on different pages; test setup broken")
	}
}

func TestFalseSharingWithPageGrain(t *testing.T) {
	// Same workload under the traditional page-based layout: the two
	// variables share one page-size minipage and ping-pong between the
	// writers.
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 16, Views: 1, Grain: core.GrainPage})
	var vas [2]uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			vas[0] = th.Malloc(64)
			vas[1] = th.Malloc(64)
		}
		th.Barrier()
		mine := vas[th.Host()]
		for i := 0; i < 30; i++ {
			th.WriteU32(mine, uint32(i))
			th.Compute(500 * sim.Microsecond) // keep the hosts overlapped
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	wf := s.Host(0).AS.WriteFaults + s.Host(1).AS.WriteFaults
	if wf < 5 {
		t.Fatalf("total write faults = %d, want many (page ping-pong)", wf)
	}
}

func TestCompetingRequestsCounted(t *testing.T) {
	s := newSys(t, Options{Hosts: 4, SharedSize: 1 << 16, Views: 4, Seed: 3})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(64)
			th.WriteU32(va, 1)
		}
		th.Barrier()
		// All three non-owners fault simultaneously on the same minipage:
		// at least one request must queue behind the open transaction.
		if th.Host() != 0 {
			_ = th.ReadU32(va)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Manager().Stats.CompetingRequests == 0 {
		t.Fatal("no competing requests recorded for simultaneous faults")
	}
	if s.Manager().Directory()[0].Competing == 0 {
		t.Fatal("per-minipage competing counter not incremented")
	}
}

func TestBarrierRendezvous(t *testing.T) {
	s := newSys(t, Options{Hosts: 3, SharedSize: 1 << 14, Views: 1})
	var order []int
	err := s.Run(func(th *Thread) {
		th.Compute(sim.Duration(th.Host()) * sim.Millisecond) // staggered arrivals
		th.Barrier()
		order = append(order, th.Host())
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("only %d threads passed the barrier", len(order))
	}
	if s.Manager().Stats.BarrierEpisodes != 1 {
		t.Fatalf("episodes = %d", s.Manager().Stats.BarrierEpisodes)
	}
}

func TestPrefetchHidesReadLatency(t *testing.T) {
	run := func(prefetch bool) sim.Duration {
		s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 20, Views: 1, Seed: 5})
		var va uint64
		err := s.Run(func(th *Thread) {
			if th.Host() == 0 {
				va = th.Malloc(4096)
				th.Write(va, make([]byte, 4096))
			}
			th.Barrier()
			if th.Host() == 1 {
				if prefetch {
					th.Prefetch(va, 4096)
				}
				th.Compute(5 * sim.Millisecond) // overlap window
				buf := make([]byte, 4096)
				start := th.Now()
				th.Read(va, buf)
				th.Stats.ComputeTime += 0 // keep form
				_ = start
			}
			th.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		// Read-fault time on host 1's thread.
		var rf sim.Duration
		for _, th := range s.Threads() {
			if th.Host() == 1 {
				rf = th.Stats.ReadFaultTime + th.Stats.PrefetchTime
			}
		}
		return rf
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("prefetch did not help: with=%v without=%v", with, without)
	}
}

func TestPushReplicatesToAllHosts(t *testing.T) {
	s := newSys(t, Options{Hosts: 4, SharedSize: 1 << 16, Views: 4})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(64)
			th.WriteU32(va, 41)
			th.WriteU32(va, 42)
			th.Push(va)
		}
		th.Barrier()
		th.Compute(20 * sim.Millisecond) // let the push finish
		th.Barrier()
		// Reads must hit local copies: no read faults on hosts 1..3.
		if got := th.ReadU32(va); got != 42 {
			t.Errorf("host %d read %d", th.Host(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if rf := s.Host(i).AS.ReadFaults; rf != 0 {
			t.Fatalf("host %d read faults = %d, want 0 (push should predeliver)", i, rf)
		}
	}
	cs, _ := s.Manager().Directory()[0].Copyset()
	if cs != hostset.Of(0, 1, 2, 3) {
		t.Fatalf("copyset after push = %v", cs)
	}
}

func TestChunkedAllocationSharesMinipage(t *testing.T) {
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 20, Views: 6, ChunkLevel: 4})
	var vas [8]uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			for i := range vas {
				vas[i] = th.Malloc(672)
				th.WriteU32(vas[i], uint32(i))
			}
		}
		th.Barrier()
		if th.Host() == 1 {
			// Reading the first molecule faults in the whole chunk: the
			// next three reads are free.
			for i := 0; i < 4; i++ {
				if got := th.ReadU32(vas[i]); got != uint32(i) {
					t.Errorf("molecule %d = %d", i, got)
				}
			}
			if rf := th.host.AS.ReadFaults; rf != 1 {
				t.Errorf("read faults = %d, want 1 (chunk fetched whole)", rf)
			}
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManagerQueueDrainsInOrder(t *testing.T) {
	// Sequential writers via a lock: every transaction closes properly and
	// the final state is consistent; directory must be idle at the end.
	s := newSys(t, Options{Hosts: 8, SharedSize: 1 << 16, Views: 2, Seed: 11})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(256)
			th.WriteU32(va, 0)
		}
		th.Barrier()
		for i := 0; i < 3; i++ {
			th.Lock(0)
			th.WriteU32(va, th.ReadU32(va)+1)
			th.Unlock(0)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, e := range s.Manager().Directory() {
		if e.Busy() {
			t.Fatalf("minipage %d directory entry still busy after run", id)
		}
		if e.queue.Len() != 0 {
			t.Fatalf("minipage %d has %d stranded queued requests", id, e.queue.Len())
		}
	}
}

func TestThreadStatsBreakdown(t *testing.T) {
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 16, Views: 2})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(128)
			th.WriteU32(va, 5)
		}
		th.Barrier()
		th.Compute(2 * sim.Millisecond)
		if th.Host() == 1 {
			_ = th.ReadU32(va)
			th.WriteU32(va, 6)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range s.Threads() {
		st := th.Stats
		if st.ComputeTime != 2*sim.Millisecond {
			t.Fatalf("thread %d compute = %v", th.ID, st.ComputeTime)
		}
		if st.SynchTime <= 0 || st.Barriers != 2 {
			t.Fatalf("thread %d synch = %v barriers = %d", th.ID, st.SynchTime, st.Barriers)
		}
		if th.Host() == 1 {
			if st.ReadFaults != 1 || st.WriteFaults != 1 {
				t.Fatalf("host1 faults = %d/%d", st.ReadFaults, st.WriteFaults)
			}
			if st.ReadFaultTime <= 0 || st.WriteFaultTime <= 0 {
				t.Fatalf("host1 fault times = %v/%v", st.ReadFaultTime, st.WriteFaultTime)
			}
		}
		if st.Total() < st.ComputeTime+st.SynchTime {
			t.Fatalf("total %v < parts", st.Total())
		}
	}
}

func TestMultipleThreadsPerHost(t *testing.T) {
	s := newSys(t, Options{Hosts: 2, ThreadsPerHost: 2, SharedSize: 1 << 16, Views: 2})
	var va uint64
	counts := make(map[int]int)
	err := s.Run(func(th *Thread) {
		if th.ID == 0 {
			va = th.Malloc(8)
			th.WriteU32(va, 0)
		}
		th.Barrier()
		th.Lock(1)
		th.WriteU32(va, th.ReadU32(va)+1)
		th.Unlock(1)
		th.Barrier()
		counts[th.ID]++
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 4 {
		t.Fatalf("threads completed = %d, want 4", len(counts))
	}
	// Final value visible to a fresh read.
	s2 := s // counter written by 4 threads
	_ = s2
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (sim.Duration, uint64) {
		s := newSys(t, Options{Hosts: 4, SharedSize: 1 << 16, Views: 4, Seed: 99})
		var va uint64
		err := s.Run(func(th *Thread) {
			if th.Host() == 0 {
				va = th.Malloc(64)
				th.WriteU32(va, 0)
			}
			th.Barrier()
			for i := 0; i < 5; i++ {
				th.Lock(2)
				th.WriteU32(va, th.ReadU32(va)+1)
				th.Unlock(2)
				th.Compute(100 * sim.Microsecond)
			}
			th.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Elapsed(), s.Manager().Stats.CompetingRequests
	}
	e1, c1 := run()
	e2, c2 := run()
	if e1 != e2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", e1, c1, e2, c2)
	}
}

func TestViewIsolationAcrossMinipages(t *testing.T) {
	// Protections of minipages sharing a page must move independently:
	// after host 1 fetches minipage A for reading, minipage B on the same
	// page must still be NoAccess on host 1.
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 16, Views: 4})
	var va, vb uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(64)
			vb = th.Malloc(64)
			th.WriteU32(va, 1)
			th.WriteU32(vb, 2)
		}
		th.Barrier()
		if th.Host() == 1 {
			_ = th.ReadU32(va)
			pa, _ := th.host.Region.ProtOf(va)
			pb, _ := th.host.Region.ProtOf(vb)
			if pa != vm.ReadOnly {
				t.Errorf("A prot = %v, want ReadOnly", pa)
			}
			if pb != vm.NoAccess {
				t.Errorf("B prot = %v, want NoAccess (independent views)", pb)
			}
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyMinipagesStress(t *testing.T) {
	// A few hundred minipages cycling through owners; checks directory
	// consistency at scale.
	const n = 200
	s := newSys(t, Options{Hosts: 4, SharedSize: 1 << 20, Views: 16, Seed: 13})
	vas := make([]uint64, n)
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			for i := range vas {
				vas[i] = th.Malloc(200)
				th.WriteU32(vas[i], uint32(i))
			}
		}
		th.Barrier()
		// Each host writes its residue class.
		for i := th.Host(); i < n; i += th.NumHosts() {
			th.WriteU32(vas[i], th.ReadU32(vas[i])+1)
		}
		th.Barrier()
		// Everyone verifies everything.
		for i := 0; i < n; i++ {
			if got := th.ReadU32(vas[i]); got != uint32(i)+1 {
				t.Errorf("minipage %d = %d, want %d", i, got, i+1)
			}
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, e := range s.Manager().Directory() {
		if e.Busy() || e.queue.Len() != 0 {
			t.Fatalf("entry %d not quiesced", id)
		}
		cs, _ := e.Copyset()
		if cs.Empty() {
			t.Fatalf("entry %d empty copyset", id)
		}
	}
}

func TestRunStatsString(t *testing.T) {
	// Smoke-test the fmt paths of the small types.
	if s := mReadReq.String(); s != "READ_REQUEST" {
		t.Fatal(s)
	}
	if s := mtype(99).String(); s != "mtype(99)" {
		t.Fatal(s)
	}
	if s := fmt.Sprint(vm.ReadWrite); s != "ReadWrite" {
		t.Fatal(s)
	}
}

func TestRequestsCountedOnceWhenQueued(t *testing.T) {
	// Simultaneous faults on one minipage queue at the manager; each
	// request must count once in ReadReqs even though it is dispatched
	// again when dequeued.
	s := newSys(t, Options{Hosts: 4, SharedSize: 1 << 16, Views: 4, Seed: 3})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(64)
			th.WriteU32(va, 1)
		}
		th.Barrier()
		if th.Host() != 0 {
			_ = th.ReadU32(va)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Manager().Stats.CompetingRequests == 0 {
		t.Fatal("expected queued competing requests")
	}
	if got := s.Manager().Stats.ReadReqs; got != 3 {
		t.Fatalf("ReadReqs = %d, want 3 (one per faulting host)", got)
	}
}
