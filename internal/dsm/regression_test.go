package dsm

import (
	"strings"
	"testing"

	"millipage/internal/sim"
)

// TestPrefetchSpanClearedWhenUnaligned covers the prefetch-span leak: a
// span is recorded at the address the application passed to Prefetch,
// which need not be minipage-aligned, but used to be cleared only by
// base equality against the fetched minipage's base. An unaligned
// prefetch then leaked its span forever — later faults in the range were
// misclassified as prefetch waits and, worse, later Prefetch calls for
// the range were silently swallowed.
func TestPrefetchSpanClearedWhenUnaligned(t *testing.T) {
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 16, Views: 4})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(256)
			th.Write(va, make([]byte, 256))
		}
		th.Barrier()
		if th.Host() == 1 {
			th.Prefetch(va+8, 64) // unaligned: 8 bytes into the minipage
			th.Compute(20 * sim.Millisecond)
			if n := len(th.host.prefetchSpans); n != 0 {
				t.Errorf("unaligned prefetch leaked %d span(s) after completion", n)
			}
		}
		th.Barrier()
		if th.Host() == 0 {
			th.WriteU32(va, 7) // invalidate host 1's copy again
		}
		th.Barrier()
		if th.Host() == 1 {
			before := th.Stats.Prefetches
			th.Prefetch(va+8, 64)
			if th.Stats.Prefetches != before+1 {
				t.Error("re-Prefetch after invalidation was swallowed by a stale span")
			}
			th.Compute(20 * sim.Millisecond)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGangFetchSpansClearedWhenUnaligned is the same leak through the
// composed-views path, with several unaligned members at once.
func TestGangFetchSpansClearedWhenUnaligned(t *testing.T) {
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 18, Views: 8})
	var vas [3]uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			for i := range vas {
				vas[i] = th.Malloc(256)
				th.Write(vas[i], make([]byte, 256))
			}
		}
		th.Barrier()
		if th.Host() == 1 {
			th.GangFetch([]Span{
				{Addr: vas[0] + 4, Size: 32},
				{Addr: vas[1] + 12, Size: 32},
				{Addr: vas[2] + 20, Size: 32},
			})
			// GangFetch blocks until every member is installed; the spans
			// must be gone the moment it returns.
			if n := len(th.host.prefetchSpans); n != 0 {
				t.Errorf("gang fetch leaked %d span(s)", n)
			}
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunReuseRejected covers the Run-twice guard: a System drives one
// application; reusing it would restart a spent simulation engine over
// stale protocol state.
func TestRunReuseRejected(t *testing.T) {
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 14, Views: 1})
	if err := s.Run(func(th *Thread) { th.Barrier() }); err != nil {
		t.Fatal(err)
	}
	err := s.Run(func(th *Thread) {})
	if err == nil {
		t.Fatal("second Run on the same System succeeded")
	}
	if !strings.Contains(err.Error(), "twice") {
		t.Fatalf("unexpected error: %v", err)
	}
	// RunPerHost shares the guard.
	if err := s.RunPerHost(func(th *Thread) {}); err == nil {
		t.Fatal("RunPerHost after Run succeeded")
	}
}
