package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"millipage/internal/bench"
	"millipage/internal/serve"
)

// runServe drives the KV/session-cache serving harness (internal/serve):
// named scenarios over the DSM store, with per-op-type latency
// percentiles, throughput, the fault-service breakdown and a determinism
// fingerprint. -check runs the scenario twice and fails on any
// fingerprint difference; -all sweeps the BENCH_sim.json serving matrix.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	scenario := fs.String("scenario", "million", "scenario name (see -list)")
	list := fs.Bool("list", false, "list the registered scenarios and exit")
	check := fs.Bool("check", false, "run the scenario twice and verify the fingerprints match")
	all := fs.Bool("all", false, "run the default serving matrix and record it (see -out)")
	out := fs.String("out", "BENCH_sim.json", "with -all: serving-rows report path (empty = table only)")
	protocol := fs.String("protocol", "", "override the scenario's coherence protocol (millipage, ivy, lrc, lrc-mw)")
	engine := fs.String("engine", "", "override the event engine: seq (classic) or par (sharded parallel)")
	hosts := fs.Int("hosts", 0, "override the cluster size")
	clients := fs.Int("clients", 0, "override the simulated client count")
	rate := fs.Float64("rate", 0, "override the offered load (ops/sec of virtual time)")
	ops := fs.Int("ops", 0, "override the operation count")
	seed := fs.Int64("seed", 0, "override the workload seed")
	faults := fs.String("faults", "", "override the fault preset (clean, drop-heavy, reorder-heavy, partition-heal, crash-restart)")
	fs.Parse(args)

	if *list {
		fmt.Println("registered serving scenarios:")
		for _, name := range serve.Names() {
			sc, err := serve.Lookup(name)
			if err != nil {
				return err
			}
			faultCol := sc.Faults
			if faultCol == "" {
				faultCol = "clean"
			}
			fmt.Printf("  %-16s %-10s hosts=%-3d keys=%-6d clients=%-8d rate=%-7.0f ops=%-7d read=%.2f zipf=%.2f faults=%s\n",
				sc.Name, sc.Protocol, sc.Hosts, sc.Keys, sc.Clients, sc.Rate, sc.Ops, sc.ReadFrac, sc.ZipfS, faultCol)
		}
		return nil
	}

	if *all {
		return bench.WriteServing(os.Stdout, nil, *out)
	}

	sc, err := serve.Lookup(*scenario)
	if err != nil {
		return fmt.Errorf("%w (try -list)", err)
	}
	if *protocol != "" {
		sc.Protocol = *protocol
	}
	if *engine != "" {
		sc.Engine = *engine
	}
	if *hosts != 0 {
		sc.Hosts = *hosts
	}
	if *clients != 0 {
		sc.Clients = *clients
	}
	if *rate != 0 {
		sc.Rate = *rate
	}
	if *ops != 0 {
		sc.Ops = *ops
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *faults != "" {
		sc.Faults = *faults
	}

	fmt.Printf("serving scenario %s: %s on %d hosts, %d clients, %.0f ops/s offered ...\n",
		sc.Name, sc.Protocol, sc.Hosts, sc.Clients, sc.Rate)
	res, err := serve.Run(sc)
	if err != nil {
		return err
	}
	fmt.Println(strings.TrimRight(res.String(), "\n"))
	if *check {
		res2, err := serve.Run(sc)
		if err != nil {
			return err
		}
		if res.Fingerprint != res2.Fingerprint {
			return fmt.Errorf("determinism check failed: fingerprint %016x vs %016x across identical runs",
				res.Fingerprint, res2.Fingerprint)
		}
		fmt.Printf("determinism check: two runs, identical fingerprint %016x\n", res.Fingerprint)
	}
	return nil
}
