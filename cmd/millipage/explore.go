package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"millipage/internal/mcheck"
)

func runExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	protocol := fs.String("protocol", "millipage", "coherence protocol (millipage, millipage-repl, ivy, lrc, lrc-mw)")
	workload := fs.String("workload", "drf", "litmus workload: "+strings.Join(mcheck.WorkloadNames(), ", "))
	faults := fs.String("faults", "", "fault preset ("+strings.Join(mcheck.FaultNames(), ", ")+"); empty = clean network")
	hosts := fs.Int("hosts", 0, "cluster size (0 = the workload's default)")
	seed := fs.Int64("seed", 1, "system seed: engine rng and fault plan")
	schedules := fs.Int("schedules", 200, "schedules to explore (schedule 0 is the default order)")
	exploreSeed := fs.Int64("exploreseed", 0, "seed for the schedule perturbation strategies (0 = -seed)")
	preempt := fs.Float64("preempt", 0.25, "probability of deferring a yielded process at a tie")
	budget := fs.Int("budget", 50, "max preemptions per schedule (0 = unbounded)")
	shrinkRuns := fs.Int("shrinkruns", mcheck.DefaultShrinkRuns, "replay budget for the delta-debugging shrinker")
	keepGoing := fs.Bool("keepgoing", false, "keep exploring after the first failure")
	artifacts := fs.String("artifacts", "", "directory for shrunk repro traces (empty = don't write)")
	replay := fs.String("replay", "", "replay a saved .mchk trace instead of exploring")
	fs.Parse(args)

	if *replay != "" {
		return replayTrace(os.Stdout, *replay)
	}

	o := mcheck.Options{
		Protocol: *protocol, Workload: *workload, Faults: *faults,
		Hosts: *hosts, Seed: *seed,
		Schedules: *schedules, ExploreSeed: *exploreSeed,
		Preempt: *preempt, Budget: *budget,
		ShrinkRuns: *shrinkRuns, KeepGoing: *keepGoing, ArtifactDir: *artifacts,
	}
	if o.ExploreSeed == 0 {
		o.ExploreSeed = o.Seed
	}

	net := o.Faults
	if net == "" {
		net = "clean"
	}
	fmt.Printf("exploring %s/%s (%s network), seed %d, up to %d schedules ...\n",
		o.Protocol, o.Workload, net, o.Seed, o.Schedules)

	rep, err := mcheck.Explore(o)
	if err != nil {
		return err
	}

	var failures, decisions int
	maxDecisions := 0
	for _, s := range rep.Schedules {
		if s.Failure != nil {
			failures++
		}
		decisions += s.Decisions
		if s.Decisions > maxDecisions {
			maxDecisions = s.Decisions
		}
	}
	fmt.Printf("explored %d schedules (%d distinct), %d scheduling decisions (max %d per run)\n",
		len(rep.Schedules), rep.Distinct, decisions, maxDecisions)

	if rep.Failure == nil {
		fmt.Println("all schedules passed the SW/MR, consistency and agreement oracles")
		return nil
	}

	fr := rep.Failure
	fmt.Printf("\nFAILURE on schedule %d (%d failing of %d explored):\n  %s\n",
		fr.Schedule.Index, failures, len(rep.Schedules), fr.Schedule.Failure.Error())
	fmt.Printf("recorded trace: %d decisions, digest %016x\n", len(fr.Trace.Decisions), fr.Trace.Digest())
	if fr.Shrunk != nil {
		fmt.Printf("shrunk to %d decisions (digest %016x), failure replays as:\n  %s\n",
			len(fr.Shrunk.Decisions), fr.Shrunk.Digest(), fr.Shrunk.Failure)
	}
	if fr.ArtifactPath != "" {
		fmt.Printf("repro artifact: %s\n  (replay with: millipage explore -replay %s)\n",
			fr.ArtifactPath, fr.ArtifactPath)
	}
	return fmt.Errorf("schedule exploration found a failing schedule")
}

// replayTrace re-executes a saved decision trace twice and verifies the
// two runs are bit-identical (same fingerprint) and match the recorded
// failure, if any.
func replayTrace(out io.Writer, path string) error {
	tr, err := mcheck.LoadTrace(path)
	if err != nil {
		return err
	}
	net := tr.Faults
	if net == "" {
		net = "clean"
	}
	fmt.Fprintf(out, "replaying %s: %s/%s (%s network), seed %d, %d decisions, digest %016x\n",
		path, tr.Protocol, tr.Workload, net, tr.Seed, len(tr.Decisions), tr.Digest())

	first, err := mcheck.Replay(tr)
	if err != nil {
		return err
	}
	second, err := mcheck.Replay(tr)
	if err != nil {
		return err
	}
	if first.Fingerprint != second.Fingerprint {
		return fmt.Errorf("replay is not deterministic: fingerprints %q vs %q", first.Fingerprint, second.Fingerprint)
	}
	fmt.Fprintf(out, "replay fingerprint: %s (bit-identical across two runs)\n", first.Fingerprint)

	switch {
	case first.Failure == nil && tr.Failure == "":
		fmt.Fprintln(out, "schedule passes every oracle, as recorded")
	case first.Failure != nil && tr.Failure != "":
		fmt.Fprintf(out, "schedule reproduces the recorded failure:\n  %s\n", first.Failure.Error())
		if first.Failure.Error() != tr.Failure {
			fmt.Fprintf(out, "  (recorded message was: %s)\n", tr.Failure)
		}
	case first.Failure != nil:
		return fmt.Errorf("replay failed (%s) but the trace was recorded as passing", first.Failure.Error())
	default:
		return fmt.Errorf("replay passed but the trace records failure %q", tr.Failure)
	}
	return nil
}
