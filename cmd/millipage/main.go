// Command millipage regenerates every table and figure of the paper's
// evaluation (Section 4) on the simulated testbed.
//
// Usage:
//
//	millipage costs                  Table 1 + Section 4.2 microbenchmarks
//	millipage mvoverhead [-fast]     Figure 5 (MultiView overhead sweep)
//	millipage apps [flags]           Figure 6 + Table 2 (application suite)
//	millipage chunking [flags]       Figure 7 (WATER chunking study)
//	millipage ablation [flags]       Section 5 / 3.5 ablation studies
//	millipage managerload [flags]    central vs home-based directory management
//	millipage chaos [flags]          seeded fault injection + convergence check
//	millipage explore [flags]        schedule-exploration model checking
//	millipage serve [flags]          DSM-backed KV serving scenarios
//	millipage bench [-out F]         simulator wall-clock benchmarks
//	millipage all [flags]            everything above
//
// Common flags: -scale (problem scale, 1.0 = the paper's data sets),
// -seed. The full-scale runs take a few minutes; -scale 0.1 gives a quick
// qualitative pass.
//
// Global flags (before the subcommand):
//
//	millipage -cpuprofile cpu.out -memprofile mem.out apps -scale 0.1
//	millipage -workers 1 chunking
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"millipage/internal/bench"
	"millipage/internal/faultnet"
	"millipage/internal/sim"
)

func main() {
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile to `file` at exit")
	workers := flag.Int("workers", bench.Workers(), "parallel replica-sweep width (1 = sequential)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	bench.SetWorkers(*workers)
	cmd, args := flag.Arg(0), flag.Args()[1:]

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "millipage:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "millipage:", err)
			os.Exit(1)
		}
	}

	err := dispatch(cmd, args)

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "millipage:", ferr)
			os.Exit(1)
		}
		runtime.GC() // flush dead objects so the profile shows live state
		if ferr := pprof.WriteHeapProfile(f); ferr != nil {
			fmt.Fprintln(os.Stderr, "millipage:", ferr)
			os.Exit(1)
		}
		f.Close()
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, "millipage:", err)
		os.Exit(1)
	}
}

func dispatch(cmd string, args []string) error {
	switch cmd {
	case "costs":
		return runCosts()
	case "mvoverhead":
		return runMVOverhead(args)
	case "apps":
		return runApps(args)
	case "chunking":
		return runChunking(args)
	case "ablation":
		return runAblation(args)
	case "managerload":
		return runManagerLoad(args)
	case "chaos":
		return runChaos(args)
	case "explore":
		return runExplore(args)
	case "serve":
		return runServe(args)
	case "bench":
		return runBench(args)
	case "all":
		return runAll(args)
	default:
		usage()
		os.Exit(2)
		return nil
	}
}

// usageText is the complete subcommand reference. Every dispatch case
// must appear here with its protocol/engine flags spelled out where it
// takes them — cmd/millipage's usage golden test walks dispatch and this
// text to keep the two in lockstep.
const usageText = `usage: millipage [global flags] <costs|mvoverhead|apps|chunking|ablation|managerload|chaos|explore|serve|bench|all> [flags]
  costs                Table 1 and the Section 4.2 microbenchmarks
  mvoverhead [-fast]   Figure 5: MultiView overhead vs number of views
  apps [flags]         Figure 6 and Table 2: the five-application suite
                         -scale F      problem scale (default 1.0 = paper)
                         -hosts L      comma list of host counts (default 1,2,4,8)
                         -only A       run a single application
                         -protocol P   coherence protocol: millipage, ivy, lrc, lrc-mw
                         -engine E     event engine: seq (classic) or par (sharded parallel)
                         -seed N
  chunking [flags]     Figure 7: chunking in WATER (-scale, -seed)
  ablation [flags]     Section 5 / 3.5 ablations: LRC over chunking,
                       SC-Millipage vs multi-writer LRC (twin/diff costs),
                       NT timers vs ideal timers (-scale, -seed)
  managerload [flags]  central vs home-based directory management on a
                       write-heavy workload (-hosts, -vars, -rounds, -seed)
  chaos [flags]        seeded fault injection: run the write-heavy workload
                       while the wire drops, duplicates, reorders, partitions
                       and crashes hosts, then check the results converged
                         -protocol P   millipage, ivy, lrc or lrc-mw
                         -hosts/-vars/-rounds/-seed   workload size
                         -drop/-dup/-reorder F        per-frame probabilities
                         -jitter D     reorder hold-back bound (e.g. 2ms)
                         -partition from,until   cut first half from second half
                         -crash host,at,restart  schedule a host crash/restart
                         -kill-manager  replicate directory shards and crash the
                                        host-1 primary mid-run (millipage only)
  explore [flags]      schedule-exploration model checking: perturb the order
                       of same-timestamp events over many seeded schedules,
                       assert the SW/MR, consistency and agreement oracles
                       after each, shrink any failing schedule to a minimal
                       replayable trace
                         -protocol P   millipage, ivy, lrc or lrc-mw, plus
                                       millipage-repl (replicated management)
                         -workload W   swmr, mp, dekker, drf, merge, failover, drf-nolock
                         -faults F     fault preset (see -h), default clean
                         -schedules N  schedules to explore (default 200)
                         -seed/-exploreseed/-preempt/-budget   exploration knobs
                         -artifacts D  write shrunk repro traces into D
                         -replay F     re-execute a saved .mchk trace
  serve [flags]        DSM-backed KV/session-cache serving scenarios: open-loop
                       Zipfian traffic over minipage-resident buckets, with
                       per-op-type latency percentiles, throughput, the
                       fault-service breakdown and a determinism fingerprint
                         -scenario S   scenario name (default million; see -list)
                         -list         list the registered scenarios
                         -check        run twice, fail on fingerprint mismatch
                         -all          run the default matrix, record serving rows
                         -out F        with -all: report path (default BENCH_sim.json)
                         -protocol P   millipage, ivy, lrc or lrc-mw
                         -engine E     event engine: seq (classic) or par (sharded parallel)
                         -hosts/-clients/-rate/-ops/-seed/-faults   overrides
  bench [-out F]       simulator wall-clock benchmarks vs the frozen
                       pre-optimization baseline (default -out BENCH_sim.json)
  all [flags]          everything (-scale, -fast, -seed)

global flags (before the subcommand):
  -cpuprofile F        write a CPU profile of the run to F
  -memprofile F        write a heap profile at exit to F
  -workers N           parallel replica-sweep width (default GOMAXPROCS)`

func usage() {
	fmt.Fprintln(os.Stderr, usageText)
}

func runCosts() error {
	bench.Table1(os.Stdout)
	fmt.Println()
	if err := bench.FetchCosts(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := bench.SynchCosts(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	bench.DiffCosts(os.Stdout)
	return nil
}

func runMVOverhead(args []string) error {
	fs := flag.NewFlagSet("mvoverhead", flag.ExitOnError)
	fast := fs.Bool("fast", false, "coarser sampling for a quick pass")
	fs.Parse(args)
	cfg := bench.DefaultFigure5()
	cfg.Fast = *fast
	pts := bench.Figure5(cfg)
	bench.WriteFigure5(os.Stdout, cfg, pts)
	fmt.Println()
	bench.SmallViewOverheads(os.Stdout)
	return nil
}

func parseHosts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad host count %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func runApps(args []string) error {
	fs := flag.NewFlagSet("apps", flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "problem scale (1.0 = the paper's data sets)")
	hosts := fs.String("hosts", "1,2,4,8", "comma-separated host counts")
	only := fs.String("only", "", "run a single application (SOR, IS, WATER, LU, TSP)")
	seed := fs.Int64("seed", 1, "simulation seed")
	protocol := fs.String("protocol", "millipage", "coherence protocol (millipage, ivy, lrc, lrc-mw)")
	engine := fs.String("engine", "seq", "event engine: seq (classic) or par (sharded parallel)")
	fs.Parse(args)

	cfg := bench.DefaultFigure6()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Only = *only
	cfg.Protocol = *protocol
	cfg.Engine = *engine
	hs, err := parseHosts(*hosts)
	if err != nil {
		return err
	}
	cfg.Hosts = hs

	fmt.Printf("running application suite under %s (%s engine) at scale %.2f on hosts %v ...\n", *protocol, *engine, *scale, hs)
	runs, err := bench.Figure6(cfg, os.Stdout)
	if err != nil {
		return err
	}
	fmt.Println()
	bench.WriteFigure6(os.Stdout, cfg, runs)
	fmt.Println()
	bench.Table2(os.Stdout, cfg, runs)
	return nil
}

func runChunking(args []string) error {
	fs := flag.NewFlagSet("chunking", flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "problem scale")
	seed := fs.Int64("seed", 1, "simulation seed")
	fs.Parse(args)

	cfg := bench.DefaultFigure7()
	cfg.Scale = *scale
	cfg.Seed = *seed
	fmt.Printf("running WATER chunking study at scale %.2f ...\n", *scale)
	pts, err := bench.Figure7(cfg, os.Stdout)
	if err != nil {
		return err
	}
	fmt.Println()
	bench.WriteFigure7(os.Stdout, cfg, pts)
	return nil
}

func runAblation(args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ExitOnError)
	scale := fs.Float64("scale", 0.25, "problem scale for the timer ablation")
	seed := fs.Int64("seed", 1, "simulation seed")
	fs.Parse(args)
	if err := bench.Baseline(os.Stdout, 4, 32, 8); err != nil {
		return err
	}
	fmt.Println()
	if err := bench.PageGrainComparison(os.Stdout, 1.0, *seed); err != nil {
		return err
	}
	fmt.Println()
	if err := bench.AblationLRC(os.Stdout, 4, 256, 6, 8); err != nil {
		return err
	}
	fmt.Println()
	if err := bench.MWCompare(os.Stdout, *scale, *seed); err != nil {
		return err
	}
	fmt.Println()
	if err := bench.AblationComposedViews(os.Stdout, 1.0, *seed); err != nil {
		return err
	}
	fmt.Println()
	return bench.AblationTimers(os.Stdout, *scale, *seed)
}

func runManagerLoad(args []string) error {
	fs := flag.NewFlagSet("managerload", flag.ExitOnError)
	cfg := bench.DefaultManagerLoad()
	hosts := fs.Int("hosts", cfg.Hosts, "cluster size")
	vars := fs.Int("vars", cfg.Vars, "shared variables")
	rounds := fs.Int("rounds", cfg.Rounds, "write-heavy rounds")
	seed := fs.Int64("seed", cfg.Seed, "simulation seed")
	fs.Parse(args)
	cfg.Hosts, cfg.Vars, cfg.Rounds, cfg.Seed = *hosts, *vars, *rounds, *seed
	return bench.ManagerLoadCompare(os.Stdout, cfg)
}

// parseSimDuration reads a human duration ("2ms", "500us") as virtual
// time.
func parseSimDuration(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return sim.Duration(d.Nanoseconds()), nil
}

// halves splits an n-host cluster into first-half / second-half bitmasks
// for the -partition flag.
func halves(n int) (a, b uint64) {
	for i := 0; i < n; i++ {
		if i < n/2 {
			a |= 1 << uint(i)
		} else {
			b |= 1 << uint(i)
		}
	}
	return a, b
}

func runChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	cfg := bench.DefaultChaos()
	protocol := fs.String("protocol", cfg.Protocol, "coherence protocol (millipage, ivy, lrc, lrc-mw)")
	hosts := fs.Int("hosts", cfg.Hosts, "cluster size")
	vars := fs.Int("vars", cfg.Vars, "shared variables")
	rounds := fs.Int("rounds", cfg.Rounds, "write-heavy rounds")
	seed := fs.Int64("seed", cfg.Seed, "simulation seed (also seeds the fault injector)")
	drop := fs.Float64("drop", cfg.Plan.Drop, "per-frame drop probability [0,1)")
	dup := fs.Float64("dup", cfg.Plan.Dup, "per-frame duplication probability [0,1)")
	reorder := fs.Float64("reorder", cfg.Plan.Reorder, "per-frame reorder probability [0,1)")
	jitter := fs.String("jitter", cfg.Plan.Jitter.String(), "reorder hold-back bound (virtual time)")
	partition := fs.String("partition", "", "cut first half from second half: from,until (e.g. 2ms,12ms)")
	crash := fs.String("crash", "", "crash schedule: host,at,restart (e.g. 1,2ms,8ms)")
	killManager := fs.Bool("kill-manager", false, "replicate directory shards and crash the host-1 primary mid-run (millipage only)")
	fs.Parse(args)

	cfg.Protocol = *protocol
	cfg.Hosts, cfg.Vars, cfg.Rounds, cfg.Seed = *hosts, *vars, *rounds, *seed
	cfg.Plan.Drop, cfg.Plan.Dup, cfg.Plan.Reorder = *drop, *dup, *reorder
	j, err := parseSimDuration(*jitter)
	if err != nil {
		return fmt.Errorf("bad -jitter: %w", err)
	}
	cfg.Plan.Jitter = j
	if *partition != "" {
		parts := strings.Split(*partition, ",")
		if len(parts) != 2 {
			return fmt.Errorf("bad -partition %q: want from,until", *partition)
		}
		from, err := parseSimDuration(strings.TrimSpace(parts[0]))
		if err != nil {
			return fmt.Errorf("bad -partition: %w", err)
		}
		until, err := parseSimDuration(strings.TrimSpace(parts[1]))
		if err != nil {
			return fmt.Errorf("bad -partition: %w", err)
		}
		a, b := halves(cfg.Hosts)
		cfg.Plan.Partitions = append(cfg.Plan.Partitions, faultnet.Partition{
			A: a, B: b, From: sim.Time(from), Until: sim.Time(until),
		})
	}
	if *crash != "" {
		parts := strings.Split(*crash, ",")
		if len(parts) != 3 {
			return fmt.Errorf("bad -crash %q: want host,at,restart", *crash)
		}
		host, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return fmt.Errorf("bad -crash host: %w", err)
		}
		at, err := parseSimDuration(strings.TrimSpace(parts[1]))
		if err != nil {
			return fmt.Errorf("bad -crash: %w", err)
		}
		restart, err := parseSimDuration(strings.TrimSpace(parts[2]))
		if err != nil {
			return fmt.Errorf("bad -crash: %w", err)
		}
		cfg.Plan.Crashes = append(cfg.Plan.Crashes, faultnet.Crash{
			Host: host, At: sim.Time(at), RestartAt: sim.Time(restart),
		})
	}
	if *killManager {
		cfg.Replicated = true
		cfg.Plan.Crashes = append(cfg.Plan.Crashes, faultnet.Crash{
			Host: 1, At: sim.Time(2 * sim.Millisecond), RestartAt: sim.Time(30 * sim.Millisecond),
		})
	}
	return bench.Chaos(os.Stdout, cfg)
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_sim.json", "machine-readable report path (empty = table only)")
	fs.Parse(args)
	return bench.WritePerfBench(os.Stdout, *out)
}

func runAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "problem scale")
	fast := fs.Bool("fast", false, "coarser Figure 5 sampling")
	seed := fs.Int64("seed", 1, "simulation seed")
	fs.Parse(args)

	fmt.Println("=== Table 1 and Section 4.2 ===")
	if err := runCosts(); err != nil {
		return err
	}
	fmt.Println("\n=== Figure 5 ===")
	var mvArgs []string
	if *fast {
		mvArgs = append(mvArgs, "-fast")
	}
	if err := runMVOverhead(mvArgs); err != nil {
		return err
	}
	fmt.Println("\n=== Figure 6 and Table 2 ===")
	if err := runApps([]string{"-scale", fmt.Sprint(*scale), "-seed", fmt.Sprint(*seed)}); err != nil {
		return err
	}
	fmt.Println("\n=== Figure 7 ===")
	return runChunking([]string{"-scale", fmt.Sprint(*scale), "-seed", fmt.Sprint(*seed)})
}
