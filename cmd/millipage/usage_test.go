package main

import (
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/usage.golden from the current usage text")

// TestUsageGolden pins the full usage text. A diff here means the CLI
// surface changed; regenerate with
//
//	go test ./cmd/millipage/ -run TestUsageGolden -update
//
// after updating the doc comment and the dispatch switch to match.
func TestUsageGolden(t *testing.T) {
	const path = "testdata/usage.golden"
	if *update {
		if err := os.WriteFile(path, []byte(usageText+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (rerun with -update to create it)", err)
	}
	if got, want := usageText+"\n", string(blob); got != want {
		t.Fatalf("usage text diverged from %s; rerun with -update if the change is intended\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestUsageListsEveryDispatchCase audits the three places a subcommand
// must be declared — the dispatch switch, the usage synopsis line, and a
// usage body entry — by parsing the dispatch switch out of main.go, so a
// new subcommand cannot land without its help text.
func TestUsageListsEveryDispatchCase(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	body := string(src)
	idx := strings.Index(body, "func dispatch(")
	if idx < 0 {
		t.Fatal("main.go has no dispatch function")
	}
	end := strings.Index(body[idx:], "\n}")
	dispatchSrc := body[idx : idx+end]
	cases := regexp.MustCompile(`case "([a-z]+)":`).FindAllStringSubmatch(dispatchSrc, -1)
	if len(cases) < 10 {
		t.Fatalf("parsed only %d dispatch cases — the extraction regexp broke", len(cases))
	}

	lines := strings.Split(usageText, "\n")
	synopsis := lines[0]
	open, close := strings.Index(synopsis, "<"), strings.Index(synopsis, ">")
	if open < 0 || close < open {
		t.Fatalf("synopsis line has no <...> subcommand list: %q", synopsis)
	}
	listed := strings.Split(synopsis[open+1:close], "|")

	for _, m := range cases {
		cmd := m[1]
		found := false
		for _, l := range listed {
			if l == cmd {
				found = true
			}
		}
		if !found {
			t.Errorf("subcommand %q dispatches but is missing from the usage synopsis", cmd)
		}
		hasEntry := false
		for _, line := range lines[1:] {
			if strings.HasPrefix(line, "  "+cmd+" ") {
				hasEntry = true
				break
			}
		}
		if !hasEntry {
			t.Errorf("subcommand %q dispatches but has no usage body entry", cmd)
		}
	}
	// And the reverse: nothing advertised that does not dispatch.
	for _, l := range listed {
		found := false
		for _, m := range cases {
			if m[1] == l {
				found = true
			}
		}
		if !found {
			t.Errorf("usage synopsis advertises %q but dispatch has no such case", l)
		}
	}
}

// TestUsageProtocolEngineFlags keeps the cross-cutting flags honest:
// every subcommand that accepts -protocol or -engine must say so in its
// usage block, with the same value vocabulary everywhere.
func TestUsageProtocolEngineFlags(t *testing.T) {
	blocks := usageBlocks(t)
	wantProtocol := []string{"apps", "chaos", "explore", "serve"}
	wantEngine := []string{"apps", "serve"}
	for _, cmd := range wantProtocol {
		if !strings.Contains(blocks[cmd], "-protocol P") {
			t.Errorf("%s takes -protocol but its usage block does not list it", cmd)
		}
		if !strings.Contains(blocks[cmd], "millipage, ivy, lrc") {
			t.Errorf("%s: -protocol vocabulary differs from the other subcommands", cmd)
		}
	}
	for _, cmd := range wantEngine {
		if !strings.Contains(blocks[cmd], "-engine E") {
			t.Errorf("%s takes -engine but its usage block does not list it", cmd)
		}
		if !strings.Contains(blocks[cmd], "seq (classic) or par (sharded parallel)") {
			t.Errorf("%s: -engine vocabulary differs from the other subcommands", cmd)
		}
	}
}

// usageBlocks splits the usage body into per-subcommand blocks keyed by
// subcommand name (entries start at column 2; continuations are deeper).
func usageBlocks(t *testing.T) map[string]string {
	t.Helper()
	blocks := map[string]string{}
	var cur string
	for _, line := range strings.Split(usageText, "\n")[1:] {
		if strings.HasPrefix(line, "  ") && !strings.HasPrefix(line, "   ") {
			cur = strings.Fields(line)[0]
		}
		if cur != "" {
			blocks[cur] += line + "\n"
		}
	}
	if len(blocks) < 10 {
		t.Fatalf("parsed only %d usage blocks", len(blocks))
	}
	return blocks
}
