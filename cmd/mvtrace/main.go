// Command mvtrace runs a tiny DSM workload with protocol tracing and
// prints the complete transcript: every message, fault and handler
// dispatch on the virtual clock. It is the fastest way to see the
// Figure-3 protocol operate — a read miss, a write upgrade with
// invalidation, and a competing request queued at the manager — and,
// with -protocol, how Ivy's page-grain protocol or home-based LRC
// handles the same access pattern.
//
// Usage: mvtrace [-hosts N] [-kind read|write|competing|lock]
//
//	[-protocol millipage|ivy|lrc]
package main

import (
	"flag"
	"fmt"
	"os"

	"millipage/internal/cluster"
	"millipage/internal/dsm"
	"millipage/internal/ivy"
	"millipage/internal/lrc"
	"millipage/internal/sim"
	"millipage/internal/trace"
)

func main() {
	hosts := flag.Int("hosts", 3, "cluster size")
	kind := flag.String("kind", "write", "scenario: read, write, competing, or lock")
	protocol := flag.String("protocol", "millipage", "coherence protocol: millipage, ivy, lrc, or lrc-mw")
	flag.Parse()

	rec := trace.NewRecorder(4096)

	// The scenarios use only the protocol-independent application API, so
	// one body runs under every protocol.
	var va uint64
	scenario := func(t cluster.AppThread) {
		switch *kind {
		case "read":
			// Host 1 read-misses a minipage owned by host 0.
			if t.Host() == 0 {
				va = t.Malloc(128)
				t.WriteU32(va, 42)
			}
			t.Barrier()
			if t.Host() == 1 {
				_ = t.ReadU32(va)
			}
		case "write":
			// All hosts take read copies, then the last host writes:
			// the manager invalidates every replica first (under LRC the
			// readers instead refetch from the home after the barrier).
			if t.Host() == 0 {
				va = t.Malloc(128)
				t.WriteU32(va, 1)
			}
			t.Barrier()
			_ = t.ReadU32(va)
			t.Barrier()
			if t.Host() == t.NumHosts()-1 {
				t.WriteU32(va, 2)
			}
		case "competing":
			// Everyone faults on the same minipage at once; the manager
			// queues the late requests (the paper's competing requests).
			if t.Host() == 0 {
				va = t.Malloc(128)
				t.WriteU32(va, 1)
			}
			t.Barrier()
			if t.Host() != 0 {
				_ = t.ReadU32(va)
			}
		case "lock":
			if t.Host() == 0 {
				va = t.Malloc(64)
				t.WriteU32(va, 0)
			}
			t.Barrier()
			t.Lock(1)
			t.WriteU32(va, t.ReadU32(va)+1)
			t.Unlock(1)
		default:
			fmt.Fprintf(os.Stderr, "mvtrace: unknown scenario %q\n", *kind)
			os.Exit(2)
		}
		t.Barrier()
		t.Compute(5 * sim.Millisecond) // let trailing acks drain into the trace
	}

	// tail prints the protocol-specific postscript after the transcript.
	var run func() (tail func(), err error)
	switch *protocol {
	case "millipage":
		run = func() (func(), error) {
			sys, err := dsm.New(dsm.Options{
				Hosts: *hosts, SharedSize: 1 << 16, Views: 4, Seed: 1, Trace: rec,
			})
			if err != nil {
				return nil, err
			}
			return func() {
					fmt.Printf("\ncompeting requests queued at the manager: %d\n",
						sys.Manager().Stats.CompetingRequests)
				}, sys.Run(func(t *dsm.Thread) {
					scenario(t)
				})
		}
	case "ivy":
		run = func() (func(), error) {
			sys, err := ivy.New(ivy.Options{
				Hosts: *hosts, SharedSize: 1 << 16, Seed: 1, Trace: rec,
			})
			if err != nil {
				return nil, err
			}
			return func() {
					fmt.Printf("\ninvalidations: %d  competing requests: %d\n",
						sys.Stats.Invalidates, sys.Stats.Competing)
				}, sys.Run(func(t *ivy.Thread) {
					scenario(t)
				})
		}
	case "lrc":
		run = func() (func(), error) {
			sys, err := lrc.New(lrc.Options{
				Hosts: *hosts, SharedSize: 1 << 16, Views: 4, Seed: 1, Trace: rec,
			})
			if err != nil {
				return nil, err
			}
			return func() {
					fmt.Printf("\nfetches: %d  diffs flushed: %d (%d bytes)  twins made: %d\n",
						sys.Stats.Fetches, sys.Stats.DiffsSent, sys.Stats.DiffBytes, sys.Stats.TwinsMade)
				}, sys.Run(func(t *lrc.Thread) {
					scenario(t)
				})
		}
	case "lrc-mw":
		run = func() (func(), error) {
			sys, err := lrc.NewMW(lrc.Options{
				Hosts: *hosts, SharedSize: 1 << 16, Views: 4, Seed: 1, Trace: rec,
			})
			if err != nil {
				return nil, err
			}
			return func() {
					fmt.Printf("\nfetches: %d  diff fetches: %d  notices: %d  invalidations: %d  twins made: %d\n",
						sys.Stats.Fetches, sys.Stats.DiffFetches, sys.Stats.Notices, sys.Stats.Invalidations, sys.Stats.TwinsMade)
				}, sys.Run(func(t *lrc.MWThread) {
					scenario(t)
				})
		}
	default:
		fmt.Fprintf(os.Stderr, "mvtrace: unknown protocol %q (want millipage, ivy, lrc or lrc-mw)\n", *protocol)
		os.Exit(2)
	}

	tail, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvtrace:", err)
		os.Exit(1)
	}

	fmt.Printf("scenario %q under %s on %d hosts — %d events:\n\n", *kind, *protocol, *hosts, rec.Total())
	rec.Dump(os.Stdout)
	tail()
}
