// Command mvtrace runs a tiny Millipage workload with protocol tracing
// and prints the complete transcript: every message, fault and handler
// dispatch on the virtual clock. It is the fastest way to see the
// Figure-3 protocol operate — a read miss, a write upgrade with
// invalidation, and a competing request queued at the manager.
//
// Usage: mvtrace [-hosts N] [-kind read|write|competing|lock]
package main

import (
	"flag"
	"fmt"
	"os"

	"millipage/internal/dsm"
	"millipage/internal/sim"
	"millipage/internal/trace"
)

func main() {
	hosts := flag.Int("hosts", 3, "cluster size")
	kind := flag.String("kind", "write", "scenario: read, write, competing, or lock")
	flag.Parse()

	rec := trace.NewRecorder(4096)
	sys, err := dsm.New(dsm.Options{
		Hosts:      *hosts,
		SharedSize: 1 << 16,
		Views:      4,
		Seed:       1,
		Trace:      rec,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvtrace:", err)
		os.Exit(1)
	}

	var va uint64
	scenario := func(t *dsm.Thread) {
		switch *kind {
		case "read":
			// Host 1 read-misses a minipage owned by host 0.
			if t.Host() == 0 {
				va = t.Malloc(128)
				t.WriteU32(va, 42)
			}
			t.Barrier()
			if t.Host() == 1 {
				_ = t.ReadU32(va)
			}
		case "write":
			// All hosts take read copies, then the last host writes:
			// the manager invalidates every replica first.
			if t.Host() == 0 {
				va = t.Malloc(128)
				t.WriteU32(va, 1)
			}
			t.Barrier()
			_ = t.ReadU32(va)
			t.Barrier()
			if t.Host() == t.NumHosts()-1 {
				t.WriteU32(va, 2)
			}
		case "competing":
			// Everyone faults on the same minipage at once; the manager
			// queues the late requests (the paper's competing requests).
			if t.Host() == 0 {
				va = t.Malloc(128)
				t.WriteU32(va, 1)
			}
			t.Barrier()
			if t.Host() != 0 {
				_ = t.ReadU32(va)
			}
		case "lock":
			if t.Host() == 0 {
				va = t.Malloc(64)
				t.WriteU32(va, 0)
			}
			t.Barrier()
			t.Lock(1)
			t.WriteU32(va, t.ReadU32(va)+1)
			t.Unlock(1)
		default:
			fmt.Fprintf(os.Stderr, "mvtrace: unknown scenario %q\n", *kind)
			os.Exit(2)
		}
		t.Barrier()
		t.Compute(5 * sim.Millisecond) // let trailing acks drain into the trace
	}

	if err := sys.Run(scenario); err != nil {
		fmt.Fprintln(os.Stderr, "mvtrace:", err)
		os.Exit(1)
	}

	fmt.Printf("scenario %q on %d hosts — %d events:\n\n", *kind, *hosts, rec.Total())
	rec.Dump(os.Stdout)
	fmt.Printf("\ncompeting requests queued at the manager: %d\n", sys.Manager().Stats.CompetingRequests)
}
