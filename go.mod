module millipage

go 1.22
