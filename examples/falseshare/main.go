// Falseshare: the experiment the paper opens with. Two hosts each write
// their own variable, but the variables live on the same physical page.
//
// Under the traditional page-based layout the page ping-pongs between the
// writers on every exchange (false sharing). Under MultiView each
// variable is a minipage with independent protection, so after one
// ownership transfer apiece the hosts never communicate again.
package main

import (
	"fmt"
	"log"

	millipage "millipage"
)

func run(pageGrain bool) (*millipage.Report, error) {
	cluster, err := millipage.NewCluster(millipage.Config{
		Hosts:           2,
		SharedMemory:    1 << 16,
		Views:           4,
		PageGranularity: pageGrain,
	})
	if err != nil {
		return nil, err
	}
	var vars [2]millipage.Addr
	return cluster.Run(func(w *millipage.Worker) {
		if w.Host() == 0 {
			vars[0] = w.Malloc(64) // same physical page,
			vars[1] = w.Malloc(64) // different minipages (or not...)
		}
		w.Barrier()
		mine := vars[w.Host()]
		for i := 0; i < 200; i++ {
			w.WriteU32(mine, uint32(i))
			w.Compute(200 * millipage.Duration(1000)) // 200us of "work"
		}
		w.Barrier()
	})
}

func main() {
	multi, err := run(false)
	if err != nil {
		log.Fatal(err)
	}
	page, err := run(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("two hosts, 200 writes each to neighboring variables on one page")
	fmt.Printf("%-22s %12s %12s %14s %12s\n", "layout", "write faults", "messages", "bytes moved", "elapsed")
	fmt.Printf("%-22s %12d %12d %14d %12v\n", "MultiView minipages",
		multi.WriteFaults, multi.MessagesSent, multi.BytesSent, multi.Elapsed)
	fmt.Printf("%-22s %12d %12d %14d %12v\n", "page granularity",
		page.WriteFaults, page.MessagesSent, page.BytesSent, page.Elapsed)
	fmt.Printf("\nfalse-sharing fault ratio: %.0fx\n",
		float64(page.WriteFaults)/float64(maxU64(multi.WriteFaults, 1)))
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
