// Falseshare: the experiment the paper opens with. Two hosts each write
// their own variable, but the variables live on the same physical page.
//
// Under the traditional page-based layout the page ping-pongs between the
// writers on every exchange (false sharing). Under MultiView each
// variable is a minipage with independent protection, so after one
// ownership transfer apiece the hosts never communicate again. (See
// internal/examples.FalseShare for the body.)
//
// Usage: falseshare [millipage|ivy|lrc]
package main

import (
	"log"
	"os"

	"millipage/internal/examples"
)

func main() {
	protocol := "millipage"
	if len(os.Args) > 1 {
		protocol = os.Args[1]
	}
	if _, err := examples.FalseShare(protocol, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
