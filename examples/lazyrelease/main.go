// Lazyrelease demonstrates the paper's Section-5 extension: home-based
// lazy release consistency over chunked minipages.
//
// Four hosts write interleaved slots that chunking has packed into the
// same minipages. Under Millipage's sequential consistency the writers
// would invalidate each other on every exchange; under LRC each host
// writes a local twin and the run-length diffs merge at the barrier —
// false sharing inside the chunk costs nothing between synchronization
// points. The program is data-race-free, so it also runs under the
// other protocols for comparison. (See internal/examples.LazyRelease
// for the body.)
//
// Usage: lazyrelease [millipage|ivy|lrc]  (default lrc)
package main

import (
	"log"
	"os"

	"millipage/internal/examples"
)

func main() {
	protocol := "lrc"
	if len(os.Args) > 1 {
		protocol = os.Args[1]
	}
	if _, err := examples.LazyRelease(protocol, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
