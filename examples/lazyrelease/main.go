// Lazyrelease demonstrates the paper's Section-5 extension: home-based
// lazy release consistency over chunked minipages (internal/lrc).
//
// Four hosts write interleaved slots that chunking has packed into the
// same minipages. Under Millipage's sequential consistency the writers
// would invalidate each other on every exchange; under LRC each host
// writes a local twin and the run-length diffs merge at the barrier —
// false sharing inside the chunk costs nothing between synchronization
// points.
package main

import (
	"fmt"
	"log"

	"millipage/internal/lrc"
	"millipage/internal/sim"
)

func main() {
	sys, err := lrc.New(lrc.Options{
		Hosts:      4,
		SharedSize: 1 << 20,
		Views:      16,
		ChunkLevel: 8, // eight 64-byte slots share each minipage
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	const slots = 64
	vas := make([]uint64, slots)

	err = sys.Run(func(t *lrc.Thread) {
		if t.Host() == 0 {
			for i := range vas {
				vas[i] = t.Malloc(64)
			}
		}
		t.Barrier()

		// Three barrier-separated rounds of interleaved writes: slot i
		// belongs to host i%4, so every chunk has four concurrent writers.
		for round := 0; round < 3; round++ {
			for i := t.Host(); i < slots; i += t.NumHosts() {
				t.WriteU32(vas[i], uint32(round*1000+i))
				t.Compute(200 * sim.Microsecond)
			}
			t.Barrier()
		}

		// Everyone observes the merged result.
		if t.Host() == 0 {
			ok := true
			for i := range vas {
				if got := t.ReadU32(vas[i]); got != uint32(2000+i) {
					fmt.Printf("slot %d = %d, want %d\n", i, got, 2000+i)
					ok = false
				}
			}
			if ok {
				fmt.Println("all 64 slots merged correctly across 4 concurrent writers")
			}
		}
		t.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}

	st := sys.Stats
	fmt.Printf("\nelapsed %v\n", sys.Elapsed())
	fmt.Printf("write faults (twins taken): %d — one per chunk per host per interval,\n", st.WriteFault)
	fmt.Printf("no ping-pong between writers\n")
	fmt.Printf("diffs flushed: %d (%d bytes of run-length-encoded updates)\n", st.DiffsSent, st.DiffBytes)
	fmt.Printf("fetches from home: %d\n", st.Fetches)
}
