// Histogram: a parallel reduction in the style of the paper's IS
// benchmark. Eight hosts histogram a large key stream into a shared
// 2 KB array that is split into per-host 256-byte regions — each region
// its own minipage — and combined with a skewed all-to-all schedule so
// every region has exactly one writer per phase and no locks are needed.
//
// It also demonstrates Prefetch: each host prefetches its next region
// while still summing the current one. (See internal/examples.Histogram
// for the body.)
//
// Usage: histogram [millipage|ivy|lrc]
package main

import (
	"log"
	"os"

	"millipage/internal/examples"
)

func main() {
	protocol := "millipage"
	if len(os.Args) > 1 {
		protocol = os.Args[1]
	}
	if _, err := examples.Histogram(protocol, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
