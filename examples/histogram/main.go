// Histogram: a parallel reduction in the style of the paper's IS
// benchmark. Eight hosts histogram a large key stream into a shared
// 2 KB array that is split into per-host 256-byte regions — each region
// its own minipage — and combined with a skewed all-to-all schedule so
// every region has exactly one writer per phase and no locks are needed.
//
// It also demonstrates Prefetch: each host prefetches its next region
// while still summing the current one.
package main

import (
	"fmt"
	"log"

	millipage "millipage"
)

const (
	hosts   = 8
	buckets = 512
	keys    = 1 << 20
)

func main() {
	cluster, err := millipage.NewCluster(millipage.Config{
		Hosts:        hosts,
		SharedMemory: 64 << 10,
		Views:        8,
	})
	if err != nil {
		log.Fatal(err)
	}

	per := buckets / hosts
	regionBytes := per * 4
	var regions [hosts]millipage.Addr

	report, err := cluster.Run(func(w *millipage.Worker) {
		h := w.Host()
		if h == 0 {
			for r := range regions {
				regions[r] = w.Malloc(regionBytes)
				w.Write(regions[r], make([]byte, regionBytes))
			}
		}
		w.Barrier()

		// Local histogram of this host's slice of the key stream.
		local := make([]uint32, buckets)
		n := keys / hosts
		for i := 0; i < n; i++ {
			k := (uint64(h*n+i)*0x9E3779B97F4A7C15 ^ 0xD1B54A32D192ED03) >> 11 % buckets
			local[k]++
		}
		w.Compute(millipage.Duration(n) * 45) // ~45ns per key on the testbed

		// Skewed all-to-all: in phase p host h owns region (h+p)%hosts.
		buf := make([]byte, regionBytes)
		for phase := 0; phase < hosts; phase++ {
			r := (h + phase) % hosts
			if phase+1 < hosts {
				w.Prefetch(regions[(h+phase+1)%hosts], regionBytes)
			}
			w.Read(regions[r], buf)
			for b := 0; b < per; b++ {
				v := uint32(buf[4*b]) | uint32(buf[4*b+1])<<8 | uint32(buf[4*b+2])<<16 | uint32(buf[4*b+3])<<24
				v += local[r*per+b]
				buf[4*b], buf[4*b+1], buf[4*b+2], buf[4*b+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			}
			w.Write(regions[r], buf)
			w.Barrier()
		}

		// Host 0 verifies the grand total.
		if h == 0 {
			var total uint64
			for r := 0; r < hosts; r++ {
				w.Read(regions[r], buf)
				for b := 0; b < per; b++ {
					total += uint64(uint32(buf[4*b]) | uint32(buf[4*b+1])<<8 |
						uint32(buf[4*b+2])<<16 | uint32(buf[4*b+3])<<24)
				}
			}
			fmt.Printf("histogram total = %d (want %d)\n", total, uint64(keys/hosts*hosts))
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nelapsed %v, %d read faults, %d write faults, %d messages\n",
		report.Elapsed, report.ReadFaults, report.WriteFaults, report.MessagesSent)
	fmt.Printf("views in use: %d (eight 256-byte regions per 4 KB page)\n", report.ViewsUsed)
}
