// Quickstart: a four-host Millipage cluster sharing a counter and a
// message buffer. Shows allocation, reads/writes, locks and barriers —
// the whole Section 3.4 API surface in one page of code.
package main

import (
	"fmt"
	"log"

	millipage "millipage"
)

func main() {
	cluster, err := millipage.NewCluster(millipage.Config{
		Hosts:        4,
		SharedMemory: 1 << 20,
		Views:        8, // up to 8 minipages may share a physical page
	})
	if err != nil {
		log.Fatal(err)
	}

	var counter, greeting millipage.Addr

	report, err := cluster.Run(func(w *millipage.Worker) {
		// Host 0 allocates the shared data. Each allocation becomes its
		// own minipage: the two variables may share a physical page but
		// never falsely share.
		if w.Host() == 0 {
			counter = w.Malloc(8)
			greeting = w.Malloc(64)
			w.WriteU64(counter, 0)
			w.Write(greeting, []byte("hello from host 0       "))
		}
		w.Barrier()

		// Every host increments the counter under a cluster-wide lock.
		// Sequential consistency means no flushes, no release operations:
		// it reads like threads on one machine.
		for i := 0; i < 10; i++ {
			w.Lock(1)
			w.WriteU64(counter, w.ReadU64(counter)+1)
			w.Unlock(1)
		}
		w.Barrier()

		// Everyone reads both variables; the DSM moved them as needed.
		buf := make([]byte, 24)
		w.Read(greeting, buf)
		fmt.Printf("host %d: counter=%d greeting=%q\n",
			w.Host(), w.ReadU64(counter), string(buf))
		w.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrun summary:")
	fmt.Println(report)
}
