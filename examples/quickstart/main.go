// Quickstart: a four-host Millipage cluster sharing a counter and a
// message buffer. Shows allocation, reads/writes, locks and barriers —
// the whole Section 3.4 API surface in one page of code (see
// internal/examples.Quickstart for the body).
//
// Usage: quickstart [millipage|ivy|lrc]
package main

import (
	"log"
	"os"

	"millipage/internal/examples"
)

func main() {
	protocol := "millipage"
	if len(os.Args) > 1 {
		protocol = os.Args[1]
	}
	if _, err := examples.Quickstart(protocol, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
