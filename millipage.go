// Package millipage is a Go reproduction of "MultiView and Millipage —
// Fine-Grain Sharing in Page-Based DSMs" (Itzkovitz & Schuster, OSDI '99):
// a page-based software distributed shared memory with sharing units
// smaller than a page.
//
// The MultiView technique maps one memory object into several virtual
// views; each view's pages carry independent protections, so sub-page
// objects ("minipages") that share a physical page get individual access
// control through the ordinary VM mechanism — false sharing disappears
// without relaxing consistency. Millipage builds a sequentially
// consistent Single-Writer/Multiple-Readers DSM on top, with a thin
// manager-based protocol: no twins, no diffs, no code instrumentation.
//
// Because the original runs on Windows NT page protections, SEH fault
// interception and a Myrinet cluster, this reproduction executes on a
// deterministic simulated substrate: a software VM layer with real page
// tables, protections and fault upcalls; a FastMessages-like network
// calibrated to the paper's measured costs; and a virtual-time engine.
// Applications written against this package perform real shared-memory
// computation (the bytes are real; the protocol moves them); the clock
// they observe is the calibrated virtual clock of the paper's testbed.
//
// # Quick start
//
//	cluster, err := millipage.NewCluster(millipage.Config{
//		Hosts:        4,
//		SharedMemory: 1 << 20,
//		Views:        8,
//	})
//	if err != nil { ... }
//	report, err := cluster.Run(func(w *millipage.Worker) {
//		if w.Host() == 0 {
//			addr := w.Malloc(256)
//			w.WriteU32(addr, 42)
//		}
//		w.Barrier()
//		// every host reads the shared value
//	})
//
// See examples/ for complete programs and internal/apps for the paper's
// five-application benchmark suite.
package millipage

import (
	"fmt"
	"strings"

	"millipage/internal/cluster"
	"millipage/internal/core"
	"millipage/internal/dsm"
	"millipage/internal/fastmsg"
	"millipage/internal/faultnet"
	"millipage/internal/ivy"
	"millipage/internal/lrc"
	"millipage/internal/sim"
)

// Addr is an address in the shared application-view address space, as
// returned by Worker.Malloc. It is valid on every host without
// translation.
type Addr = uint64

// Duration is virtual time on the simulated testbed's clock
// (nanoseconds).
type Duration = sim.Duration

// Config describes a Millipage cluster.
type Config struct {
	// Protocol selects the coherence protocol the cluster runs:
	//
	//	"millipage" (or "") — the paper's protocol: MultiView minipages,
	//	        sequentially consistent Single-Writer/Multiple-Readers.
	//	"ivy"       — the Li/Hudak page-granularity baseline with
	//	        distributed page managers (internal/ivy). Page-grain
	//	        sharing; Views, ChunkLevel, PageGranularity and
	//	        HomeBasedManagement are ignored.
	//	"lrc"       — home-based lazy release consistency over minipages
	//	        (internal/lrc): twins and diffs, updates propagate at
	//	        acquires and barriers. Programs must be data-race-free
	//	        (synchronize through Barrier/Lock, never by spinning on
	//	        shared memory).
	//	"lrc-mw"    — true multiple-writer LRC (internal/lrc): per-host
	//	        vector timestamps partition execution into intervals,
	//	        write notices piggyback on lock grants and barrier
	//	        releases, and an acquire invalidates only minipages with
	//	        a causally newer write — the diffs are fetched lazily
	//	        from the writers on the next fault. Same DRF contract as
	//	        "lrc".
	//
	// All protocols run the same Worker API on the same simulated
	// substrate, so apps and benchmarks sweep protocols by changing only
	// this field.
	Protocol string

	// Hosts is the number of machines (the paper's cluster has 8; the
	// parallel engine scales to 64/256). Required, in [1, 1024].
	Hosts int

	// ThreadsPerHost is the number of application threads per host.
	// The paper's machines are uniprocessors; default 1.
	ThreadsPerHost int

	// SharedMemory is the size of the shared region in bytes. Required.
	SharedMemory int

	// Views is the number of application views, which bounds how many
	// minipages can share one physical page (Section 2.4). Default 1.
	Views int

	// ChunkLevel aggregates this many successive same-size allocations
	// into one minipage (Section 4.4's chunking switch). 0/1 = off.
	ChunkLevel int

	// PageGranularity selects the traditional page-based layout instead
	// of MultiView: allocations pack with no regard for sharing units and
	// the sharing grain is the full page. This is the false-sharing
	// baseline (and Figure 7's "none" configuration).
	PageGranularity bool

	// HomeBasedManagement shards directory duties across the cluster:
	// each minipage is managed by a statically assigned home host
	// (id % Hosts) instead of funneling every fault, invalidation and
	// ack through host 0. Host 0 remains the allocation authority and
	// keeps the barrier and lock services. Application results are
	// identical to the central configuration; only the protocol load
	// distribution (and hence timing) changes.
	HomeBasedManagement bool

	// ManagerReplication replicates each home-based directory shard as a
	// primary/backup pair coordinated by a view service on host 0:
	// directory mutations are mirrored to the backup before their effects
	// escape, and when a shard's primary crashes the synced backup
	// promotes and keeps serving the shard's minipages — no stall until
	// the dead host restarts. Millipage-only; requires
	// HomeBasedManagement and the sequential engine. See docs/PROTOCOL.md,
	// "Replicated management".
	ManagerReplication bool

	// Seed makes runs reproducible; equal seeds give identical traces.
	// Default 1.
	Seed int64

	// PerfectTimers removes the NT multimedia-timer pathology from the
	// service threads (Section 3.5.1) — the "once the polling and timer
	// resolution problems are solved" ablation.
	PerfectTimers bool

	// Engine selects the event engine: "seq" (or "", the default) runs
	// the classic sequential calendar; "par" shards the calendar per host
	// and executes shards concurrently inside conservative windows whose
	// lookahead is the network's minimum cross-host latency. Observable
	// results (virtual times, counters, digests) are identical; only
	// wall-clock time changes. "par" is incompatible with Faults and
	// tracing.
	Engine string

	// ParWorkers bounds the parallel engine's worker goroutines; 0 means
	// GOMAXPROCS. Ignored under the sequential engine. The simulation's
	// outcome never depends on it.
	ParWorkers int

	// Faults, when non-nil and enabled, injects deterministic network and
	// host faults per the plan (drops, duplicates, reordering, delay
	// jitter, link partitions, host crash/restart), all drawn from the
	// plan's seed. The substrate's reliability layer and the protocols'
	// retry/dedup machinery restore exactly-once FIFO delivery, so
	// applications still run to completion with the same results — only
	// timing changes. Nil (or an all-zero plan) leaves the clean path
	// untouched.
	Faults *faultnet.Plan
}

// Cluster is a DSM cluster ready to run one application under the
// configured protocol.
type Cluster struct {
	protocol string
	mp       *dsm.System    // Protocol "millipage"
	ivySys   *ivy.System    // Protocol "ivy"
	lrcSys   *lrc.System    // Protocol "lrc"
	mwSys    *lrc.MWSystem  // Protocol "lrc-mw"
	ran      bool
}

// netParams returns the fastmsg parameters cfg implies: zero (letting
// the protocol fill its calibrated defaults) unless PerfectTimers asks
// for the idealized service threads.
func (cfg Config) netParams() fastmsg.Params {
	if !cfg.PerfectTimers {
		return fastmsg.Params{}
	}
	p := fastmsg.DefaultParams()
	p.PerfectTimers = true
	p.SweepShortLo = 30 * sim.Microsecond
	return p
}

// NewCluster builds a cluster from cfg.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Hosts < 1 || cfg.Hosts > 1024 {
		return nil, fmt.Errorf("millipage: Config.Hosts = %d out of range [1, 1024]; set Hosts to the cluster size (the paper uses 8, the parallel engine scales to 256)", cfg.Hosts)
	}
	switch cfg.Engine {
	case "", "seq", "par":
	default:
		return nil, fmt.Errorf("millipage: Config.Engine = %q unknown (want \"seq\" or \"par\")", cfg.Engine)
	}
	if cfg.Engine == "par" && cfg.Faults.Enabled() {
		return nil, fmt.Errorf("millipage: the parallel engine does not support fault injection; use Engine \"seq\" with Faults")
	}
	proto := strings.ToLower(cfg.Protocol)
	if proto == "" {
		proto = "millipage"
	}
	if cfg.ManagerReplication {
		if proto != "millipage" {
			return nil, fmt.Errorf("millipage: Config.ManagerReplication is millipage-only (got protocol %q)", proto)
		}
		if !cfg.HomeBasedManagement {
			return nil, fmt.Errorf("millipage: Config.ManagerReplication requires HomeBasedManagement")
		}
		if cfg.Engine == "par" {
			return nil, fmt.Errorf("millipage: Config.ManagerReplication requires the sequential engine")
		}
	}
	switch proto {
	case "millipage":
		opt := dsm.Options{
			Hosts:          cfg.Hosts,
			ThreadsPerHost: cfg.ThreadsPerHost,
			SharedSize:     cfg.SharedMemory,
			Views:          cfg.Views,
			ChunkLevel:     cfg.ChunkLevel,
			Seed:           cfg.Seed,
			Engine:         cfg.Engine,
			ParWorkers:     cfg.ParWorkers,
			Net:            cfg.netParams(),
			Faults:         cfg.Faults,
		}
		if cfg.HomeBasedManagement {
			opt.Management = dsm.HomeBased
		}
		opt.Replication = cfg.ManagerReplication
		if cfg.PageGranularity {
			opt.Grain = core.GrainPage
			if opt.Views == 0 {
				opt.Views = 1
			}
		}
		sys, err := dsm.New(opt)
		if err != nil {
			return nil, err
		}
		return &Cluster{protocol: proto, mp: sys}, nil
	case "ivy":
		if cfg.ThreadsPerHost > 1 {
			return nil, fmt.Errorf("millipage: protocol %q runs one thread per host", proto)
		}
		sys, err := ivy.New(ivy.Options{
			Hosts:      cfg.Hosts,
			SharedSize: cfg.SharedMemory,
			Seed:       cfg.Seed,
			Engine:     cfg.Engine,
			ParWorkers: cfg.ParWorkers,
			Net:        cfg.netParams(),
			Faults:     cfg.Faults,
		})
		if err != nil {
			return nil, err
		}
		return &Cluster{protocol: proto, ivySys: sys}, nil
	case "lrc":
		if cfg.ThreadsPerHost > 1 {
			return nil, fmt.Errorf("millipage: protocol %q runs one thread per host", proto)
		}
		sys, err := lrc.New(lrc.Options{
			Hosts:      cfg.Hosts,
			SharedSize: cfg.SharedMemory,
			Views:      cfg.Views,
			ChunkLevel: cfg.ChunkLevel,
			Seed:       cfg.Seed,
			Engine:     cfg.Engine,
			ParWorkers: cfg.ParWorkers,
			Net:        cfg.netParams(),
			Faults:     cfg.Faults,
		})
		if err != nil {
			return nil, err
		}
		return &Cluster{protocol: proto, lrcSys: sys}, nil
	case "lrc-mw":
		if cfg.ThreadsPerHost > 1 {
			return nil, fmt.Errorf("millipage: protocol %q runs one thread per host", proto)
		}
		sys, err := lrc.NewMW(lrc.Options{
			Hosts:      cfg.Hosts,
			SharedSize: cfg.SharedMemory,
			Views:      cfg.Views,
			ChunkLevel: cfg.ChunkLevel,
			Seed:       cfg.Seed,
			Engine:     cfg.Engine,
			ParWorkers: cfg.ParWorkers,
			Net:        cfg.netParams(),
			Faults:     cfg.Faults,
		})
		if err != nil {
			return nil, err
		}
		return &Cluster{protocol: proto, mwSys: sys}, nil
	default:
		return nil, fmt.Errorf("millipage: unknown protocol %q (want millipage, ivy, lrc or lrc-mw)", cfg.Protocol)
	}
}

// Protocol returns the protocol this cluster runs ("millipage", "ivy",
// "lrc" or "lrc-mw").
func (c *Cluster) Protocol() string { return c.protocol }

// runtime returns the protocol-independent cluster substrate, the basis
// of the generic half of the Report.
func (c *Cluster) runtime() *cluster.Runtime {
	switch {
	case c.mp != nil:
		return c.mp.Runtime()
	case c.ivySys != nil:
		return c.ivySys.Runtime()
	case c.mwSys != nil:
		return c.mwSys.Runtime()
	default:
		return c.lrcSys.Runtime()
	}
}

// EngineStats reports the event engine's execution shape: calendar
// shards, worker width, and — after Run, on the parallel engine — the
// number of conservative windows executed and the high-water mark of
// shards active in a single window (the run's effective parallelism
// bound). The sequential engine reports 1 shard and 0 windows.
func (c *Cluster) EngineStats() (shards, workers int, windows uint64, maxActive int) {
	eng := c.runtime().Eng
	return eng.NumShards(), eng.ParWorkers(), eng.Windows(), eng.MaxShardsActive()
}

// Run executes body on ThreadsPerHost application threads on every host
// and blocks until all of them finish, returning the run's Report. A
// Cluster runs one application; create a new Cluster per run.
func (c *Cluster) Run(body func(w *Worker)) (*Report, error) {
	if c.ran {
		return nil, fmt.Errorf("millipage: Cluster.Run called twice; create a new Cluster per run")
	}
	c.ran = true
	var err error
	switch {
	case c.mp != nil:
		err = c.mp.Run(func(t *dsm.Thread) {
			body(&Worker{t: t, mp: t})
		})
	case c.ivySys != nil:
		err = c.ivySys.Run(func(t *ivy.Thread) {
			body(&Worker{t: t})
		})
	case c.mwSys != nil:
		err = c.mwSys.Run(func(t *lrc.MWThread) {
			body(&Worker{t: t})
		})
	default:
		err = c.lrcSys.Run(func(t *lrc.Thread) {
			body(&Worker{t: t})
		})
	}
	if err != nil {
		return nil, err
	}
	return c.report(), nil
}

// System exposes the underlying Millipage DSM system for benchmarks and
// tests that need raw access (statistics, directory state). It is nil
// when the cluster runs another protocol; most applications never need
// it.
func (c *Cluster) System() *dsm.System { return c.mp }
