package millipage_test

import (
	"strings"
	"testing"

	millipage "millipage"
	"millipage/internal/faultnet"
	"millipage/internal/sim"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := millipage.NewCluster(millipage.Config{Hosts: 2}); err == nil {
		t.Fatal("zero SharedMemory accepted")
	}
	cases := []struct {
		hosts int
		ok    bool
	}{
		{-1, false},
		{0, false},
		{1, true},
		{2, true},
		{8, true},
		{64, true},
		{100, true},
		{256, true},
		{1024, true},
		{1025, false},
		{1 << 20, false},
	}
	for _, tc := range cases {
		_, err := millipage.NewCluster(millipage.Config{Hosts: tc.hosts, SharedMemory: 4096})
		if tc.ok && err != nil {
			t.Errorf("Hosts = %d rejected: %v", tc.hosts, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("Hosts = %d accepted", tc.hosts)
			} else if !strings.Contains(err.Error(), "Hosts") {
				t.Errorf("Hosts = %d error %q does not name Config.Hosts", tc.hosts, err)
			}
		}
	}
	if _, err := millipage.NewCluster(millipage.Config{Hosts: 2, SharedMemory: 1 << 16, Engine: "warp"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := millipage.NewCluster(millipage.Config{Hosts: 2, SharedMemory: 1 << 16}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := millipage.NewCluster(millipage.Config{Hosts: 2, SharedMemory: 1 << 16, Engine: "par"}); err != nil {
		t.Fatalf("valid parallel config rejected: %v", err)
	}
}

func TestRunTwiceRejected(t *testing.T) {
	c, err := millipage.NewCluster(millipage.Config{Hosts: 1, SharedMemory: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(func(w *millipage.Worker) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(func(w *millipage.Worker) {}); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestWorkerIdentityAndTime(t *testing.T) {
	c, err := millipage.NewCluster(millipage.Config{Hosts: 3, SharedMemory: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	_, err = c.Run(func(w *millipage.Worker) {
		if w.NumHosts() != 3 || w.NumThreads() != 3 {
			t.Errorf("NumHosts/NumThreads = %d/%d", w.NumHosts(), w.NumThreads())
		}
		seen[w.Host()] = true
		before := w.Now()
		w.Compute(5 * millipage.Duration(1000)) // 5us
		if w.Now()-before != 5000 {
			t.Errorf("Compute advanced %v, want 5us", w.Now()-before)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("hosts seen = %v", seen)
	}
}

func TestSharedDataEndToEnd(t *testing.T) {
	c, err := millipage.NewCluster(millipage.Config{Hosts: 4, SharedMemory: 1 << 18, Views: 8})
	if err != nil {
		t.Fatal(err)
	}
	var arr millipage.Addr
	const n = 32
	report, err := c.Run(func(w *millipage.Worker) {
		if w.Host() == 0 {
			arr = w.Malloc(n * 8)
		}
		w.Barrier()
		// Each host fills its stripe with f64 values.
		for i := w.Host(); i < n; i += w.NumHosts() {
			w.WriteF64(arr+millipage.Addr(8*i), float64(i)*1.5)
		}
		w.Barrier()
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += w.ReadF64(arr + millipage.Addr(8*i))
		}
		want := 1.5 * float64(n*(n-1)/2)
		if sum != want {
			t.Errorf("host %d sum = %v, want %v", w.Host(), sum, want)
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Hosts != 4 || report.Elapsed <= 0 {
		t.Fatalf("report = %+v", report)
	}
	if report.Minipages != 1 {
		t.Fatalf("minipages = %d, want 1 (single allocation)", report.Minipages)
	}
}

func TestReportString(t *testing.T) {
	c, err := millipage.NewCluster(millipage.Config{Hosts: 2, SharedMemory: 1 << 16, Views: 2})
	if err != nil {
		t.Fatal(err)
	}
	var a millipage.Addr
	report, err := c.Run(func(w *millipage.Worker) {
		if w.Host() == 0 {
			a = w.Malloc(64)
			w.WriteU32(a, 7)
		}
		w.Barrier()
		_ = w.ReadU32(a)
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := report.String()
	for _, want := range []string{"hosts=2", "faults:", "breakdown:", "minipages=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Report.String missing %q in:\n%s", want, s)
		}
	}
	c2, p, rf, wf, sy := report.AvgBreakdown()
	if tot := c2 + p + rf + wf + sy; tot < 0.999 || tot > 1.001 {
		t.Fatalf("breakdown sums to %v", tot)
	}
}

// TestManagerReplicationEndToEnd drives Config.ManagerReplication
// through the public API: with the host-1 directory primary crashed
// mid-run, a lock-guarded increment burst against minipages homed
// there completes exactly-once, long before the dead host restarts.
func TestManagerReplicationEndToEnd(t *testing.T) {
	// Validation: replication is millipage-only, needs home-based
	// management and the sequential engine.
	bad := []millipage.Config{
		{Hosts: 4, SharedMemory: 1 << 16, ManagerReplication: true},
		{Hosts: 4, SharedMemory: 1 << 16, Protocol: "ivy", HomeBasedManagement: true, ManagerReplication: true},
		{Hosts: 4, SharedMemory: 1 << 16, Engine: "par", HomeBasedManagement: true, ManagerReplication: true},
	}
	for i, cfg := range bad {
		if _, err := millipage.NewCluster(cfg); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}

	const (
		hosts   = 4
		victim  = 1
		incs    = 4
		restart = 2 * sim.Second
	)
	plan := &faultnet.Plan{
		Seed: 9,
		Crashes: []faultnet.Crash{
			{Host: victim, At: sim.Time(2 * sim.Millisecond), RestartAt: sim.Time(restart)},
		},
	}
	c, err := millipage.NewCluster(millipage.Config{
		Hosts: hosts, SharedMemory: 1 << 16, Views: 4, Seed: 3,
		HomeBasedManagement: true, ManagerReplication: true, Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	var vas [hosts]millipage.Addr
	var maxSeen uint32
	report, err := c.Run(func(w *millipage.Worker) {
		if w.Host() == 0 {
			for i := range vas {
				vas[i] = w.Malloc(64) // minipage i, homed at host i
				w.WriteU32(vas[i], 0)
			}
		}
		w.Barrier() // pre-crash rendezvous: everyone, victim included
		if w.Host() == victim {
			return // its host crashes at 2ms; the survivors carry on
		}
		// Let the crash land and the backup promote, then hammer the
		// dead host's shard.
		w.Compute(4 * sim.Millisecond)
		for i := 0; i < incs; i++ {
			w.Lock(0)
			v := w.ReadU32(vas[victim]) + 1
			w.WriteU32(vas[victim], v)
			if v > maxSeen {
				maxSeen = v
			}
			w.Unlock(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly-once: the last increment to land observed the full sum.
	if want := uint32((hosts - 1) * incs); maxSeen != want {
		t.Fatalf("accumulator high-water = %d, want %d (increments lost or redone across the view change)", maxSeen, want)
	}
	// The burst finished long before the victim's restart: no stall.
	if report.Elapsed >= restart {
		t.Fatalf("run took %v — stalled until the victim's restart (%v)", report.Elapsed, restart)
	}
	if report.Promotions == 0 {
		t.Fatal("no promotion recorded — the shard never failed over")
	}
	if report.MirrorsSent == 0 {
		t.Fatal("no mirrors recorded — directory effects were not mirror-gated")
	}
	if !strings.Contains(report.String(), "replication:") {
		t.Fatal("Report.String has no replication line on a replicated run")
	}
}

func TestPageGranularityConfig(t *testing.T) {
	c, err := millipage.NewCluster(millipage.Config{
		Hosts: 2, SharedMemory: 1 << 16, PageGranularity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b millipage.Addr
	report, err := c.Run(func(w *millipage.Worker) {
		if w.Host() == 0 {
			a = w.Malloc(64)
			b = w.Malloc(64)
			w.WriteU32(a, 1)
			w.WriteU32(b, 2)
		}
		w.Barrier()
		if w.Host() == 1 {
			if w.ReadU32(a) != 1 || w.ReadU32(b) != 2 {
				t.Error("bad values under page granularity")
			}
			// Both variables share one page minipage: a single fetch.
			// (Checked through the report below.)
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.ViewsUsed != 1 {
		t.Fatalf("views = %d, want 1 under page granularity", report.ViewsUsed)
	}
	if report.ReadFaults != 1 {
		t.Fatalf("read faults = %d, want 1 (both vars on one page)", report.ReadFaults)
	}
}

func TestDeterministicSeeds(t *testing.T) {
	run := func(seed int64) millipage.Duration {
		c, err := millipage.NewCluster(millipage.Config{
			Hosts: 4, SharedMemory: 1 << 16, Views: 4, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var a millipage.Addr
		report, err := c.Run(func(w *millipage.Worker) {
			if w.Host() == 0 {
				a = w.Malloc(128)
				w.WriteU32(a, 0)
			}
			w.Barrier()
			for i := 0; i < 5; i++ {
				w.Lock(1)
				w.WriteU32(a, w.ReadU32(a)+1)
				w.Unlock(1)
			}
			w.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return report.Elapsed
	}
	if run(42) != run(42) {
		t.Fatal("same seed, different elapsed")
	}
	if run(42) == run(43) {
		t.Log("note: different seeds coincided (possible but unlikely)")
	}
}

func TestPerfectTimersFaster(t *testing.T) {
	run := func(perfect bool) millipage.Duration {
		c, err := millipage.NewCluster(millipage.Config{
			Hosts: 2, SharedMemory: 1 << 16, Views: 2, Seed: 5, PerfectTimers: perfect,
		})
		if err != nil {
			t.Fatal(err)
		}
		var a millipage.Addr
		report, err := c.Run(func(w *millipage.Worker) {
			if w.Host() == 0 {
				a = w.Malloc(64)
				w.WriteU32(a, 1)
			}
			w.Barrier()
			// Host 1 faults while host 0 computes: service delay is
			// sweeper-bound, which is what PerfectTimers removes.
			if w.Host() == 0 {
				w.Compute(20 * 1000 * 1000) // 20ms busy
			} else {
				for i := 0; i < 10; i++ {
					w.WriteU32(a, w.ReadU32(a)+1)
					w.Compute(100 * 1000)
				}
			}
			w.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		// The fault-service delay shows up in host 1's write-fault time
		// (total elapsed is bounded by host 0's compute either way).
		for _, tr := range report.Threads {
			if tr.Host == 1 {
				return tr.WriteFlt
			}
		}
		t.Fatal("host 1 thread missing")
		return 0
	}
	slow := run(false)
	fast := run(true)
	if fast >= slow {
		t.Fatalf("PerfectTimers did not cut fault service time: %v vs %v", fast, slow)
	}
}
