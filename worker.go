package millipage

import (
	"millipage/internal/cluster"
	"millipage/internal/dsm"
	"millipage/internal/sim"
)

// Worker is one application thread's handle on the DSM — the whole
// user-facing Millipage API (the paper's Section 3.4 library): shared
// allocation, memory access, barriers, locks, prefetch and push updates.
// A Worker is only valid inside the body function passed to Cluster.Run,
// on its own thread.
//
// The core surface is protocol-independent: the same body runs under
// any Config.Protocol. Prefetch, Push and GangFetch are Millipage
// performance hints; under other protocols they are correct no-ops.
type Worker struct {
	t  cluster.AppThread
	mp *dsm.Thread // non-nil only under the millipage protocol
}

// Host returns the id of the host this worker runs on (0..Hosts-1).
// Host 0 is the manager.
func (w *Worker) Host() int { return w.t.Host() }

// NumHosts returns the cluster size.
func (w *Worker) NumHosts() int { return w.t.NumHosts() }

// ThreadID returns the worker's global thread id (0..NumThreads-1).
func (w *Worker) ThreadID() int { return w.t.ThreadID() }

// NumThreads returns the total number of application threads.
func (w *Worker) NumThreads() int { return w.t.NumThreads() }

// Now returns the current virtual time since the start of the run.
func (w *Worker) Now() Duration { return sim.Duration(w.t.Now()) }

// Compute charges d of application computation to this thread — the
// modeled cost of the code between shared-memory operations.
func (w *Worker) Compute(d Duration) { w.t.Compute(d) }

// ResetStats zeroes this thread's time-breakdown statistics and restarts
// its clock. Benchmarks call it at the start of the timed section so
// setup is excluded from the reported breakdown.
func (w *Worker) ResetStats() { w.t.ResetStats() }

// Malloc allocates size bytes of shared memory and returns its address,
// valid on every host. Allocation defines the sharing unit: each
// allocation (or chunk of allocations, with Config.ChunkLevel) becomes
// one minipage with independent coherence.
func (w *Worker) Malloc(size int) Addr { return w.t.Malloc(size) }

// Read copies len(buf) bytes of shared memory at addr into buf, fetching
// minipages from their owners as needed.
func (w *Worker) Read(addr Addr, buf []byte) { w.t.Read(addr, buf) }

// Write stores data into shared memory at addr, acquiring exclusive
// ownership of the covered minipages as needed.
func (w *Worker) Write(addr Addr, data []byte) { w.t.Write(addr, data) }

// ReadU32 reads a shared little-endian uint32.
func (w *Worker) ReadU32(addr Addr) uint32 { return w.t.ReadU32(addr) }

// WriteU32 writes a shared little-endian uint32.
func (w *Worker) WriteU32(addr Addr, v uint32) { w.t.WriteU32(addr, v) }

// ReadU64 reads a shared little-endian uint64.
func (w *Worker) ReadU64(addr Addr) uint64 { return w.t.ReadU64(addr) }

// WriteU64 writes a shared little-endian uint64.
func (w *Worker) WriteU64(addr Addr, v uint64) { w.t.WriteU64(addr, v) }

// ReadF64 reads a shared float64.
func (w *Worker) ReadF64(addr Addr) float64 { return w.t.ReadF64(addr) }

// WriteF64 writes a shared float64.
func (w *Worker) WriteF64(addr Addr, v float64) { w.t.WriteF64(addr, v) }

// Barrier blocks until every application thread in the cluster arrives.
func (w *Worker) Barrier() { w.t.Barrier() }

// Lock acquires the cluster-wide lock id; grants are FIFO.
func (w *Worker) Lock(id int) { w.t.Lock(id) }

// Unlock releases lock id.
func (w *Worker) Unlock(id int) { w.t.Unlock(id) }

// Prefetch asynchronously requests a read copy of the minipage(s) backing
// [addr, addr+size), overlapping the fetch with computation. It is a
// Millipage performance hint; under other protocols it is a no-op.
func (w *Worker) Prefetch(addr Addr, size int) {
	if w.mp != nil {
		w.mp.Prefetch(addr, size)
	}
}

// Push replicates the minipage containing addr — which this worker's host
// must hold writable — to every host as a read copy. Use it for
// frequently read, rarely written values (the paper's TSP minimal-tour
// bound). It is a Millipage performance hint; under other protocols it
// is a no-op.
func (w *Worker) Push(addr Addr) {
	if w.mp != nil {
		w.mp.Push(addr)
	}
}

// Span names a shared region for group operations.
type Span = dsm.Span

// GangFetch fetches every missing minipage backing the spans
// concurrently and blocks once for the whole group — the paper's
// composed-views idea: coarse-grain read phases over fine-grain sharing
// units. It is a Millipage performance hint; under other protocols it is
// a no-op.
func (w *Worker) GangFetch(spans []Span) {
	if w.mp != nil {
		w.mp.GangFetch(spans)
	}
}
