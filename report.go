package millipage

import (
	"fmt"
	"strings"

	"millipage/internal/stats"
)

// Report summarizes one application run: parallel execution time,
// per-thread time breakdowns (Figure 6 right), and protocol activity.
// The substrate metrics (threads, faults, messages, latencies) are
// protocol-independent; the directory and footprint counters below are
// filled per protocol and stay zero where a protocol has no equivalent.
type Report struct {
	Protocol string // the protocol that produced this run
	Hosts    int
	Elapsed  Duration // parallel execution time on the virtual clock

	Threads []ThreadReport

	// Protocol totals.
	ReadFaults        uint64
	WriteFaults       uint64
	Invalidations     uint64
	CompetingRequests uint64 // requests queued behind open transactions
	Barriers          uint64
	LockAcquisitions  uint64
	MessagesSent      uint64
	BytesSent         uint64

	// Reliability-layer activity. All zero on the clean path (no fault
	// plan); under fault injection they quantify how hard the transport
	// worked to restore exactly-once FIFO delivery.
	Retransmits   uint64 // frames re-sent by retransmit timers
	DupsDropped   uint64 // duplicate frames discarded at receivers
	OutOfOrder    uint64 // frames buffered across a sequence gap
	FramesDropped uint64 // frames discarded at down (crashed/partitioned) hosts

	// Replicated-management activity. All zero unless
	// Config.ManagerReplication: mirrors are the primary->backup
	// directory-mutation stream, promotions count backups that took a
	// shard over after its primary died.
	MirrorsSent uint64
	Promotions  uint64

	// DSM footprint (Table 2 columns).
	Minipages  int
	ViewsUsed  int
	SharedUsed int // bytes of shared memory allocated

	// Latency decomposition (the paper's Section 4.3.1 discussion: an
	// average fault service of ~750us, most of it service-thread delay).
	AvgReadFaultTime  Duration // mean time a thread spends in one read fault
	AvgWriteFaultTime Duration
	AvgServiceDelay   Duration // mean message wait for a service thread (polling/timers)

	// Full latency distributions, merged across threads. The NT timer
	// model makes fault times bimodal; the histograms expose the tails
	// that the means above flatten.
	ReadFaultLatency  stats.Histogram
	WriteFaultLatency stats.Histogram
}

// ThreadReport is one thread's execution-time breakdown.
type ThreadReport struct {
	Host int

	Total     Duration
	Compute   Duration
	Prefetch  Duration
	ReadFault Duration
	WriteFlt  Duration
	Synch     Duration
	Malloc    Duration
	Other     Duration
}

// Breakdown returns the Figure 6 (right) fractions: computation (with
// allocation and residual protocol time folded in, as the paper does),
// prefetch, read fault, write fault and synchronization — summing to 1.
func (tr ThreadReport) Breakdown() (comp, prefetch, readF, writeF, synch float64) {
	tot := float64(tr.Total)
	if tot == 0 {
		return 1, 0, 0, 0, 0
	}
	prefetch = float64(tr.Prefetch) / tot
	readF = float64(tr.ReadFault) / tot
	writeF = float64(tr.WriteFlt) / tot
	synch = float64(tr.Synch) / tot
	comp = 1 - prefetch - readF - writeF - synch
	return
}

func (c *Cluster) report() *Report {
	rt := c.runtime()
	r := &Report{
		Protocol: c.protocol,
		Hosts:    rt.NumHosts(),
		Elapsed:  rt.Elapsed(),
	}
	// The generic half: every protocol runs on the shared cluster
	// substrate, so threads, faults, messages and latencies come from the
	// runtime regardless of protocol.
	for _, t := range rt.Threads() {
		st := t.Stats
		r.Threads = append(r.Threads, ThreadReport{
			Host:      t.Host(),
			Total:     st.Total(),
			Compute:   st.ComputeTime,
			Prefetch:  st.PrefetchTime,
			ReadFault: st.ReadFaultTime,
			WriteFlt:  st.WriteFaultTime,
			Synch:     st.SynchTime,
			Malloc:    st.MallocTime,
			Other:     st.Other(),
		})
	}
	for i := 0; i < rt.NumHosts(); i++ {
		r.ReadFaults += rt.Host(i).AS.ReadFaults
		r.WriteFaults += rt.Host(i).AS.WriteFaults
		es := rt.Net.Endpoint(i).Stats()
		r.MessagesSent += es.Sent
		r.BytesSent += es.BytesSent
		r.Retransmits += es.Retransmits
		r.DupsDropped += es.DupsDropped
		r.OutOfOrder += es.OutOfOrder
		r.FramesDropped += es.DroppedDown
	}
	// Latency decomposition.
	var rfTime, wfTime Duration
	var rfN, wfN uint64
	for _, t := range rt.Threads() {
		rfTime += t.Stats.ReadFaultTime + t.Stats.PrefetchTime
		wfTime += t.Stats.WriteFaultTime
		rfN += t.Stats.ReadFaults
		wfN += t.Stats.WriteFaults
		r.ReadFaultLatency.Merge(&t.Stats.ReadFaultHist)
		r.WriteFaultLatency.Merge(&t.Stats.WriteFaultHist)
	}
	if rfN > 0 {
		r.AvgReadFaultTime = rfTime / Duration(rfN)
	}
	if wfN > 0 {
		r.AvgWriteFaultTime = wfTime / Duration(wfN)
	}
	var svc Duration
	var recv uint64
	for i := 0; i < rt.NumHosts(); i++ {
		es := rt.Net.Endpoint(i).Stats()
		svc += es.ServiceDelay
		recv += es.Received
	}
	if recv > 0 {
		r.AvgServiceDelay = svc / Duration(recv)
	}

	// The protocol half: directory activity and memory footprint.
	switch {
	case c.mp != nil:
		// Sum over every directory shard (under central management only
		// host 0's is populated).
		ms := c.mp.ManagerStatsTotal()
		r.Invalidations = ms.Invalidations
		r.CompetingRequests = ms.CompetingRequests
		r.Barriers = ms.BarrierEpisodes
		r.LockAcquisitions = ms.LockAcquisitions
		mpt := c.mp.Manager().MPT()
		r.Minipages = mpt.NumMinipages()
		r.ViewsUsed = mpt.ViewsUsed()
		r.SharedUsed = mpt.BytesAllocated()
		for i := 0; i < rt.NumHosts(); i++ {
			rs := c.mp.ReplStatsAt(i)
			r.MirrorsSent += rs.MirrorsSent
			r.Promotions += rs.Promotions
		}
	case c.ivySys != nil:
		r.Invalidations = c.ivySys.Stats.Invalidates
		r.CompetingRequests = c.ivySys.Stats.Competing
		r.Barriers = c.ivySys.BarrierEpisodes()
		r.LockAcquisitions = c.ivySys.LockAcquisitions()
	case c.mwSys != nil:
		r.Invalidations = c.mwSys.Stats.Invalidations
		r.Barriers = c.mwSys.BarrierEpisodes()
		r.LockAcquisitions = c.mwSys.LockAcquisitions()
		mpt := c.mwSys.MPT()
		r.Minipages = mpt.NumMinipages()
		r.ViewsUsed = mpt.ViewsUsed()
		r.SharedUsed = mpt.BytesAllocated()
	default:
		r.Barriers = c.lrcSys.BarrierEpisodes()
		r.LockAcquisitions = c.lrcSys.LockAcquisitions()
		mpt := c.lrcSys.MPT()
		r.Minipages = mpt.NumMinipages()
		r.ViewsUsed = mpt.ViewsUsed()
		r.SharedUsed = mpt.BytesAllocated()
	}
	return r
}

// AvgBreakdown averages the per-thread breakdowns — the bar the paper
// plots per application at eight hosts.
func (r *Report) AvgBreakdown() (comp, prefetch, readF, writeF, synch float64) {
	if len(r.Threads) == 0 {
		return 1, 0, 0, 0, 0
	}
	for _, tr := range r.Threads {
		c, p, rf, wf, s := tr.Breakdown()
		comp += c
		prefetch += p
		readF += rf
		writeF += wf
		synch += s
	}
	n := float64(len(r.Threads))
	return comp / n, prefetch / n, readF / n, writeF / n, synch / n
}

// String renders a human-readable run summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol=%s hosts=%d elapsed=%v\n", r.Protocol, r.Hosts, r.Elapsed)
	fmt.Fprintf(&b, "faults: read=%d write=%d invalidations=%d competing=%d\n",
		r.ReadFaults, r.WriteFaults, r.Invalidations, r.CompetingRequests)
	fmt.Fprintf(&b, "synch: barriers=%d locks=%d\n", r.Barriers, r.LockAcquisitions)
	fmt.Fprintf(&b, "net: msgs=%d bytes=%d\n", r.MessagesSent, r.BytesSent)
	if r.Retransmits+r.DupsDropped+r.OutOfOrder+r.FramesDropped > 0 {
		fmt.Fprintf(&b, "reliability: retransmits=%d dups=%d ooo=%d dropped=%d\n",
			r.Retransmits, r.DupsDropped, r.OutOfOrder, r.FramesDropped)
	}
	if r.MirrorsSent+r.Promotions > 0 {
		fmt.Fprintf(&b, "replication: mirrors=%d promotions=%d\n", r.MirrorsSent, r.Promotions)
	}
	fmt.Fprintf(&b, "dsm: minipages=%d views=%d shared=%dB\n", r.Minipages, r.ViewsUsed, r.SharedUsed)
	if r.ReadFaultLatency.Count() > 0 {
		fmt.Fprintf(&b, "read-fault latency: %s\n", r.ReadFaultLatency.Summary())
	}
	if r.WriteFaultLatency.Count() > 0 {
		fmt.Fprintf(&b, "write-fault latency: %s\n", r.WriteFaultLatency.Summary())
	}
	comp, pf, rf, wf, sy := r.AvgBreakdown()
	fmt.Fprintf(&b, "breakdown: comp=%.1f%% prefetch=%.1f%% read=%.1f%% write=%.1f%% synch=%.1f%%",
		comp*100, pf*100, rf*100, wf*100, sy*100)
	return b.String()
}
