// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus micro-benchmarks of the substrate itself.
//
// Simulation benchmarks report virtual-time results through
// b.ReportMetric (sim-us, speedup, slowdown); wall-clock ns/op measures
// the simulator, not the modeled system. Benchmarks default to reduced
// problem scales so `go test -bench=.` completes quickly; the cmd/millipage
// binary runs the full-scale versions.
package millipage_test

import (
	"io"
	"testing"

	millipage "millipage"
	"millipage/internal/apps"
	"millipage/internal/bench"
	"millipage/internal/mmu"
	"millipage/internal/twindiff"
)

// --- Table 1 / Section 4.2: basic operation costs ---------------------

func benchFetch(b *testing.B, size int) {
	b.Helper()
	var total float64
	for i := 0; i < b.N; i++ {
		cluster, err := millipage.NewCluster(millipage.Config{
			Hosts: 2, SharedMemory: 1 << 20, Views: 4, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		var addr millipage.Addr
		report, err := cluster.Run(func(w *millipage.Worker) {
			if w.Host() == 0 {
				addr = w.Malloc(size)
				w.Write(addr, make([]byte, size))
			}
			w.Barrier()
			if w.Host() == 1 {
				buf := make([]byte, size)
				w.Read(addr, buf)
			}
			w.Barrier()
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, tr := range report.Threads {
			if tr.Host == 1 {
				total += tr.ReadFault.Microseconds()
			}
		}
	}
	b.ReportMetric(total/float64(b.N), "sim-us/fetch")
}

// BenchmarkTable1ReadFetch128 regenerates the 128-byte minipage read
// fetch (paper Section 4.2: 204 us).
func BenchmarkTable1ReadFetch128(b *testing.B) { benchFetch(b, 128) }

// BenchmarkTable1ReadFetch4K regenerates the 4 KB minipage read fetch
// (paper: 314 us).
func BenchmarkTable1ReadFetch4K(b *testing.B) { benchFetch(b, 4096) }

// BenchmarkTable1Barrier8 regenerates the 8-host barrier (paper: 153 us).
func BenchmarkTable1Barrier8(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		cluster, err := millipage.NewCluster(millipage.Config{
			Hosts: 8, SharedMemory: 1 << 16, Views: 1, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		const trials = 8
		report, err := cluster.Run(func(w *millipage.Worker) {
			for t := 0; t < trials; t++ {
				w.Barrier()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		total += report.Threads[0].Synch.Microseconds() / trials
	}
	b.ReportMetric(total/float64(b.N), "sim-us/barrier")
}

// BenchmarkTable1DiffCreate measures the real run-length diff
// implementation on a 4 KB page (paper's modeled cost: 250 us on the
// testbed; ns/op here is this machine's cost, showing what a diff-based
// protocol would spend CPU on).
func BenchmarkTable1DiffCreate(b *testing.B) {
	page := make([]byte, 4096)
	twin := twindiff.Twin(page)
	for i := 0; i < 4096; i += 64 {
		page[i] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := twindiff.Diff(twin, page); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5: MultiView overhead --------------------------------------

func benchFigure5(b *testing.B, arrayBytes, views int) {
	cfg := mmu.PentiumII()
	var last float64
	for i := 0; i < b.N; i++ {
		tr := mmu.Traversal{ArrayBytes: arrayBytes, Views: views, Passes: 1, Warmup: 1}
		last, _, _ = tr.Slowdown(cfg)
	}
	b.ReportMetric(last, "slowdown")
}

// BenchmarkFigure5BelowBreak: 1 MB at 32 views (paper: < 4% overhead).
func BenchmarkFigure5BelowBreak(b *testing.B) { benchFigure5(b, 1<<20, 32) }

// BenchmarkFigure5AtBreak: 16 MB at 32 views, the predicted breaking
// point for 16 MB (n*N = 512).
func BenchmarkFigure5AtBreak(b *testing.B) { benchFigure5(b, 16<<20, 32) }

// BenchmarkFigure5BeyondBreak: 4 MB at 496 views (paper: severe,
// linear-in-n slowdown).
func BenchmarkFigure5BeyondBreak(b *testing.B) { benchFigure5(b, 4<<20, 496) }

// --- Figure 6 / Table 2: the application suite --------------------------

func benchApp(b *testing.B, run apps.Runner, hosts int, scale float64, chunk int) {
	b.Helper()
	var speedup float64
	for i := 0; i < b.N; i++ {
		p := apps.Params{Hosts: 1, Scale: scale, Seed: 1, ChunkLevel: chunk}
		r1, err := run(p)
		if err != nil {
			b.Fatal(err)
		}
		p.Hosts = hosts
		rn, err := run(p)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(r1.Timed) / float64(rn.Timed)
	}
	b.ReportMetric(speedup, "speedup")
}

// The Figure 6 speedup points at reduced scale (4 hosts; full scale and
// 1-8 hosts via `cmd/millipage apps`).
func BenchmarkFigure6SOR(b *testing.B)   { benchApp(b, apps.RunSOR, 4, 0.25, 0) }
func BenchmarkFigure6IS(b *testing.B)    { benchApp(b, apps.RunIS, 4, 0.25, 0) }
func BenchmarkFigure6WATER(b *testing.B) { benchApp(b, apps.RunWATER, 4, 0.25, 4) }
func BenchmarkFigure6LU(b *testing.B)    { benchApp(b, apps.RunLU, 4, 0.25, 0) }
func BenchmarkFigure6TSP(b *testing.B)   { benchApp(b, apps.RunTSP, 4, 0.7, 0) }

// --- Figure 7: chunking in WATER ----------------------------------------

// BenchmarkFigure7Chunking sweeps WATER chunking levels at reduced scale
// and reports the best level's advantage over unchunked.
func BenchmarkFigure7Chunking(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		cfg := bench.Figure7Config{Hosts: []int{4}, Levels: []int{1, 4}, Scale: 0.25, Seed: 1}
		pts, err := bench.Figure7(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if pts[0].Timed > 0 && pts[1].Timed > 0 {
			gain = float64(pts[0].Timed) / float64(pts[1].Timed)
		}
	}
	b.ReportMetric(gain, "chunk4-gain")
}

// --- Substrate micro-benchmarks (real wall-clock Go performance) -------

// BenchmarkVMAccess measures the software-VM access path.
func BenchmarkVMAccess(b *testing.B) {
	cluster, err := millipage.NewCluster(millipage.Config{
		Hosts: 1, SharedMemory: 1 << 20, Views: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	sys := cluster.System()
	host := sys.Host(0)
	as := host.AS
	if err := as.Protect(sys.Layout.ViewBase(0), sys.Layout.NumPages, 2); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	base := sys.Layout.ViewBase(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := as.Access(nil, base+uint64((i*64)%(1<<19)), buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMMUTraversal measures the hardware-model throughput
// (accesses/second of the TLB+cache simulation).
func BenchmarkMMUTraversal(b *testing.B) {
	cfg := mmu.PentiumII()
	m := mmu.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(uint64(i*7)%(1<<26), uint64(i*13)%(1<<26))
	}
}
